// Package audit is the runtime invariant auditor for the multi-host CXL-DSM
// machine (DESIGN.md §12). It is always compiled and optionally enabled: the
// machine walks its own state — every host cache, the device coherence
// directory, the PIPM remapping tables, the kernel page table — at quantum
// boundaries (and after every protocol transition in paranoid mode), distils
// the walk into small fact records, and this package applies the protocol
// rules derived from the paper:
//
//   - conservation — each shared block has exactly one exclusive owner or a
//     consistent sharer set across all host caches plus the device directory;
//   - MESI/ME/I' legality — no two M/E/ME holders, ME and I' imply a live
//     local remapping entry with the line's in-memory bit set, and the
//     per-block 1-bit in-memory state agrees with the directory (a migrated
//     block never has a directory entry, §4.3.2);
//   - remap-cache / page-table agreement — global and local remapping tables
//     mirror each other, counters stay inside their 6-/4-bit fields, remap
//     caches only hold in-range page indices;
//   - sim-heap accounting — the footprint gauges telemetry samples equal the
//     occupancy an independent walk counts.
//
// Every check is observation-only: the walk uses Peek/ForEach accessors that
// never touch LRU state or statistics, so an audited run's Result digest is
// bit-identical to an unaudited one. Violations capture a bounded trail of
// protocol events from the telemetry ring and fail the run.
package audit

import (
	"fmt"
	"strings"

	"pipm/internal/cache"
	"pipm/internal/coherence"
	"pipm/internal/config"
	"pipm/internal/sim"
	"pipm/internal/telemetry"
)

// Mode selects how often the auditor sweeps machine state.
type Mode uint8

const (
	// Off disables auditing entirely; the hot path pays one nil check.
	Off Mode = iota
	// Quantum sweeps the whole machine state after every scheduling quantum.
	Quantum
	// Paranoid additionally checks the touched line after every shared
	// access and sweeps after every protocol transition (promotion,
	// revocation, line migration/demotion, kernel epoch migration).
	Paranoid
)

func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Quantum:
		return "quantum"
	case Paranoid:
		return "paranoid"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// ParseMode parses a mode name as accepted by cmd/validate -audit.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return Off, nil
	case "quantum":
		return Quantum, nil
	case "paranoid":
		return Paranoid, nil
	}
	return Off, fmt.Errorf("audit: unknown mode %q (want off, quantum or paranoid)", s)
}

// Options configures an auditor.
type Options struct {
	Mode Mode
	// Interval is the number of quanta between periodic sweeps (default 1:
	// every quantum).
	Interval int
	// MaxViolations bounds how many violations are collected before the
	// auditor stops recording (default 16). The run fails on the first one
	// either way; the bound keeps reports readable.
	MaxViolations int
	// TrailDepth is how many telemetry protocol events each violation
	// captures from the ring (default 8).
	TrailDepth int
}

// Enabled reports whether the options turn auditing on.
func (o Options) Enabled() bool { return o.Mode != Off }

// WithDefaults fills zero fields with their defaults.
func (o Options) WithDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 1
	}
	if o.MaxViolations <= 0 {
		o.MaxViolations = 16
	}
	if o.TrailDepth <= 0 {
		o.TrailDepth = 8
	}
	return o
}

// Invariant identifiers, stable across releases: they name rows of the
// DESIGN.md §12 catalogue and prefix every violation message.
const (
	InvInclusion    = "inclusion"       // L1 contents ⊆ LLC contents
	InvSWMR         = "swmr"            // single writer / multiple readers
	InvConservation = "conservation"    // every cached copy is tracked somewhere
	InvDirPrecision = "dir-precision"   // directory entries match holder sets
	InvMigrated     = "migrated-state"  // ME/I' legality + in-memory bit agreement
	InvRemapAgree   = "remap-agreement" // global/local table + remap-cache agreement
	InvAccounting   = "accounting"      // footprint gauges equal walked occupancy
)

// Family mirrors the machine's scheme families for family-conditional rules
// without importing the migration registry.
type Family uint8

const (
	FamilyNative Family = iota
	FamilyKernel
	FamilyHardware
	FamilyLocalOnly
)

// Violation is one invariant failure, with the simulated time it was
// detected at and a bounded trail of the protocol events leading up to it.
type Violation struct {
	At        sim.Time
	Invariant string
	Detail    string
	Trail     []telemetry.Event
}

func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%v [%s] %s", v.At, v.Invariant, v.Detail)
	for _, e := range v.Trail {
		fmt.Fprintf(&b, "\n    trail t=%v %s host=%d page=%d arg=%d", e.At, e.Kind, e.Host, e.Page, e.Arg)
	}
	return b.String()
}

// Report summarises one audited run.
type Report struct {
	Mode       Mode
	Sweeps     uint64 // whole-state sweeps performed
	Checks     uint64 // individual fact checks applied
	Violations []Violation
	Truncated  bool // MaxViolations reached; later violations were dropped
}

// Err returns nil for a clean report, or an error naming the first
// violations (the run-failing signal the harness propagates).
func (r *Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d invariant violation(s)", len(r.Violations))
	if r.Truncated {
		b.WriteString(" (truncated)")
	}
	for i, v := range r.Violations {
		if i == 4 {
			fmt.Fprintf(&b, "\n  ... %d more", len(r.Violations)-i)
			break
		}
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return fmt.Errorf("%s", b.String())
}

// Auditor collects violations and applies the invariant rules to the fact
// records the machine's state walk produces. It holds no machine state and
// never mutates anything it is shown.
type Auditor struct {
	opt        Options
	sweeps     uint64
	checks     uint64
	violations []Violation
	truncated  bool
}

// New builds an auditor; nil options fields take defaults.
func New(o Options) *Auditor {
	return &Auditor{opt: o.WithDefaults()}
}

// Options returns the (defaulted) options the auditor runs with.
func (a *Auditor) Options() Options { return a.opt }

// NoteSweep counts one whole-state sweep.
func (a *Auditor) NoteSweep() { a.sweeps++ }

// OK reports whether no violation has been recorded.
func (a *Auditor) OK() bool { return len(a.violations) == 0 }

// Report snapshots the auditor's findings.
func (a *Auditor) Report() Report {
	out := Report{Mode: a.opt.Mode, Sweeps: a.sweeps, Checks: a.checks, Truncated: a.truncated}
	out.Violations = append(out.Violations, a.violations...)
	return out
}

// Failf records a violation, capturing the ring's most recent events as the
// trail. ring may be nil. Recording stops at MaxViolations.
func (a *Auditor) Failf(at sim.Time, ring *telemetry.Trace, invariant, format string, args ...any) {
	if len(a.violations) >= a.opt.MaxViolations {
		a.truncated = true
		return
	}
	v := Violation{At: at, Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
	if ring != nil {
		evs := ring.Events()
		if len(evs) > a.opt.TrailDepth {
			evs = evs[len(evs)-a.opt.TrailDepth:]
		}
		v.Trail = evs
	}
	a.violations = append(a.violations, v)
}

// ------------------------------------------------------------------ facts --

// LineFacts aggregates every host's view of one shared cache line plus the
// matching device-directory and migration state. HolderMask/SharedMask/
// L1StrayMask are exact host sets (coherence.HostSet scales to the 256-host
// cap); Excl* describe the (unique, if legal) exclusive holder.
type LineFacts struct {
	Line config.Addr

	HolderMask  coherence.HostSet // hosts whose LLC holds a valid copy
	SharedMask  coherence.HostSet // hosts whose LLC holds the line Shared
	L1StrayMask coherence.HostSet // hosts where an L1 holds the line but the LLC does not

	ExclCount int         // hosts holding the line M/E/ME in their LLC
	ExclHost  int         // one such host (valid when ExclCount > 0)
	ExclState cache.State // its state

	HasDir bool // device directory has an entry for the line
	Dir    coherence.Entry

	// Hardware family: the line's in-memory migrated bit and the global
	// table's page owner. MigOwner is -1 when the page is unowned.
	Migrated bool
	MigOwner int

	// Kernel family: the page table's owner for the line's page, -1 for
	// CXL-resident pages.
	PageOwner int
}

// CheckLine applies the per-line conservation and legality rules.
func (a *Auditor) CheckLine(at sim.Time, ring *telemetry.Trace, fam Family, f *LineFacts) {
	a.checks++

	// Inclusion: an L1 may never hold a line its host's LLC lost.
	if !f.L1StrayMask.Empty() {
		a.Failf(at, ring, InvInclusion, "line %#x cached in L1(s) of hosts %v but absent from their LLC", f.Line, f.L1StrayMask)
	}

	// The local-only idealisation has no cross-host sharing semantics at
	// all: each host serves "shared" data from its own DRAM, so multiple
	// exclusive copies are legitimate and the device directory never tracks
	// anything. Only per-host inclusion (checked above) applies.
	if fam == FamilyLocalOnly {
		return
	}

	// SWMR: at most one exclusive holder machine-wide, and an exclusive
	// holder excludes every other copy.
	if f.ExclCount > 1 {
		a.Failf(at, ring, InvSWMR, "line %#x has %d exclusive holders (last: host %d in %v)", f.Line, f.ExclCount, f.ExclHost, f.ExclState)
	} else if f.ExclCount == 1 && !f.HolderMask.Only(f.ExclHost) {
		a.Failf(at, ring, InvSWMR, "line %#x held %v by host %d while hosts %v also hold copies", f.Line, f.ExclState, f.ExclHost, f.HolderMask.Without(f.ExclHost))
	}

	// Locally-resident blocks opt out of the device directory: kernel pages
	// migrated to a host, and hardware-migrated (ME/I') lines. For them the
	// rule is confinement — only the owner may cache the block and the
	// directory must not track it.
	if fam == FamilyKernel && f.PageOwner >= 0 {
		if !f.HolderMask.Without(f.PageOwner).Empty() {
			a.Failf(at, ring, InvDirPrecision, "line %#x of page owned by host %d cached by hosts %v", f.Line, f.PageOwner, f.HolderMask)
		}
		if f.HasDir {
			a.Failf(at, ring, InvDirPrecision, "line %#x of locally-resident page (host %d) has a device-directory entry %+v", f.Line, f.PageOwner, f.Dir)
		}
		return
	}
	if fam == FamilyHardware && f.Migrated {
		// I'/ME legality (§4.3.2): the migrated bit confines the block to
		// the owning host — cached there as ME, or uncached (I') — and the
		// directory deliberately holds no entry for it.
		if f.MigOwner < 0 {
			a.Failf(at, ring, InvMigrated, "line %#x has its migrated bit set but its page has no owner", f.Line)
		}
		if f.HasDir {
			a.Failf(at, ring, InvMigrated, "migrated line %#x has a device-directory entry %+v (I'/ME must be directory-Invalid)", f.Line, f.Dir)
		}
		if f.MigOwner >= 0 && !f.HolderMask.Without(f.MigOwner).Empty() {
			a.Failf(at, ring, InvMigrated, "migrated line %#x (owner %d) cached by hosts %v", f.Line, f.MigOwner, f.HolderMask)
		}
		if f.ExclCount == 1 && f.ExclState != cache.MigratedExclusive {
			a.Failf(at, ring, InvMigrated, "migrated line %#x cached %v at host %d (want ME)", f.Line, f.ExclState, f.ExclHost)
		}
		if !f.SharedMask.Empty() {
			a.Failf(at, ring, InvMigrated, "migrated line %#x held Shared by hosts %v", f.Line, f.SharedMask)
		}
		return
	}
	// A CXL-backed line must never be cached MigratedExclusive.
	if f.ExclCount == 1 && f.ExclState == cache.MigratedExclusive {
		a.Failf(at, ring, InvMigrated, "line %#x cached ME at host %d without its migrated bit set", f.Line, f.ExclHost)
	}

	// Directory precision for CXL-backed lines: the entry's view must
	// describe the holders' view — exact equality for bitmask sharer sets,
	// population + region cover for summary sets (DESIGN.md §16).
	switch {
	case f.HasDir && f.Dir.State == coherence.DirShared:
		if f.ExclCount != 0 {
			a.Failf(at, ring, InvDirPrecision, "line %#x directory-Shared but host %d holds it %v", f.Line, f.ExclHost, f.ExclState)
		}
		if !f.Dir.Sharers.Describes(f.SharedMask) {
			a.Failf(at, ring, InvDirPrecision, "line %#x directory sharers %v do not describe cached sharers %v", f.Line, f.Dir.Sharers, f.SharedMask)
		}
	case f.HasDir && f.Dir.State == coherence.DirModified:
		own := int(f.Dir.Owner)
		if !f.HolderMask.Only(own) {
			a.Failf(at, ring, InvDirPrecision, "line %#x directory-Modified at host %d but cached by hosts %v", f.Line, own, f.HolderMask)
		} else if f.ExclCount != 1 || f.ExclHost != own ||
			(f.ExclState != cache.Modified && f.ExclState != cache.Exclusive) {
			a.Failf(at, ring, InvDirPrecision, "line %#x directory-Modified at host %d but held %v (excl=%d@%d)", f.Line, own, f.ExclState, f.ExclCount, f.ExclHost)
		}
	default:
		// No entry: conservation demands no host caches the line at all —
		// a cached copy the directory forgot could never be invalidated.
		if !f.HolderMask.Empty() {
			a.Failf(at, ring, InvConservation, "line %#x cached by hosts %v with no directory entry", f.Line, f.HolderMask)
		}
	}
}

// PageFacts describes one page's remapping state for the hardware family.
type PageFacts struct {
	Page      int64
	GlobalCur int   // global table CurHost (-1 none)
	GlobalCnd int   // global table CandHost (-1 none)
	GlobalCnt uint8 // 6-bit vote counter
	HasLocal  bool  // CurHost's local table has an entry (meaningful when GlobalCur >= 0)
	LocalCnt  uint8 // 4-bit revocation counter of that entry
	Hosts     int
	// OtherLocalMask marks hosts other than GlobalCur that hold a local
	// entry for the page — always illegal.
	OtherLocalMask coherence.HostSet
}

// CheckPage applies the remap-table agreement rules (§4.2/§4.4): the global
// and local tables mirror each other and counters fit their hardware fields.
func (a *Auditor) CheckPage(at sim.Time, ring *telemetry.Trace, f *PageFacts) {
	a.checks++
	if f.GlobalCur >= f.Hosts || f.GlobalCnd >= f.Hosts {
		a.Failf(at, ring, InvRemapAgree, "page %d global entry names out-of-range host (cur=%d cand=%d hosts=%d)", f.Page, f.GlobalCur, f.GlobalCnd, f.Hosts)
	}
	if f.GlobalCnt > 63 {
		a.Failf(at, ring, InvRemapAgree, "page %d vote counter %d exceeds the 6-bit field", f.Page, f.GlobalCnt)
	}
	if f.GlobalCur >= 0 && !f.HasLocal {
		a.Failf(at, ring, InvRemapAgree, "page %d globally owned by host %d with no local remapping entry", f.Page, f.GlobalCur)
	}
	if f.GlobalCur >= 0 && f.LocalCnt > 15 {
		a.Failf(at, ring, InvRemapAgree, "page %d revocation counter %d exceeds the 4-bit field", f.Page, f.LocalCnt)
	}
	if !f.OtherLocalMask.Empty() {
		a.Failf(at, ring, InvRemapAgree, "page %d has local remapping entries at non-owner hosts %v (owner %d)", f.Page, f.OtherLocalMask, f.GlobalCur)
	}
}

// CacheBoundFacts describes one remap cache's walked content.
type CacheBoundFacts struct {
	Name     string
	Cached   int   // walked entry count
	Capacity int   // -1 infinite, 0 disabled
	MinPage  int64 // smallest cached page index (valid when Cached > 0)
	MaxPage  int64 // largest cached page index
	Pages    int64 // shared pages in the machine
	Dups     int   // duplicate page indices found
}

// CheckRemapCache validates a remap cache's structural integrity.
func (a *Auditor) CheckRemapCache(at sim.Time, ring *telemetry.Trace, f *CacheBoundFacts) {
	a.checks++
	if f.Capacity > 0 && f.Cached > f.Capacity {
		a.Failf(at, ring, InvRemapAgree, "%s holds %d entries over its %d capacity", f.Name, f.Cached, f.Capacity)
	}
	if f.Dups != 0 {
		a.Failf(at, ring, InvRemapAgree, "%s holds %d duplicate page tags", f.Name, f.Dups)
	}
	if f.Cached > 0 && (f.MinPage < 0 || f.MaxPage >= f.Pages) {
		a.Failf(at, ring, InvRemapAgree, "%s caches out-of-range page (min=%d max=%d pages=%d)", f.Name, f.MinPage, f.MaxPage, f.Pages)
	}
}

// AccountingFacts compares a footprint gauge against an independent recount.
type AccountingFacts struct {
	Host  int
	What  string // "pages" or "lines"
	Gauge int64  // what telemetry's footprint gauge reads
	Walk  int64  // what the audit walk counted
}

// CheckAccounting applies the sim-heap accounting rule: the gauges sampled
// into the time-series must equal walked occupancy.
func (a *Auditor) CheckAccounting(at sim.Time, ring *telemetry.Trace, f *AccountingFacts) {
	a.checks++
	if f.Gauge != f.Walk {
		a.Failf(at, ring, InvAccounting, "host %d footprint gauge reads %d %s but the walk counted %d", f.Host, f.Gauge, f.What, f.Walk)
	}
}

// ConservationFacts compares lifetime migration counters against live state:
// what was migrated in minus what was migrated out must equal what is
// resident now.
type ConservationFacts struct {
	What     string // e.g. "migrated lines"
	In       uint64 // lifetime inflow counter
	Out      uint64 // lifetime outflow counter
	Initial  int64  // state present before the run (static pre-assignment)
	Resident int64  // walked live state
}

// CheckConservation applies the flow-conservation rule to a counter pair.
func (a *Auditor) CheckConservation(at sim.Time, ring *telemetry.Trace, f *ConservationFacts) {
	a.checks++
	if f.Initial+int64(f.In)-int64(f.Out) != f.Resident {
		a.Failf(at, ring, InvAccounting, "%s: initial %d + in %d - out %d != resident %d", f.What, f.Initial, f.In, f.Out, f.Resident)
	}
}
