// Package cache implements the set-associative caches in each host's
// hierarchy (per-core L1D, per-host shared LLC) with LRU replacement,
// write-back/write-allocate semantics, and per-line coherence state. The
// coherence layer owns state meaning; the cache is just the indexed store.
// Eviction results are returned to the caller — that return value is the
// hook PIPM's incremental migration rides on.
package cache

import (
	"fmt"

	"pipm/internal/config"
)

// State is a cache line's coherence state. The values cover MESI within a
// host plus the PIPM-specific ME state (§4.3.2: Migrated-Modified/Exclusive,
// held in the local directory for blocks whose backing store is the host's
// own local DRAM rather than CXL memory).
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
	// MigratedExclusive is PIPM's ME: cached exclusively on this host and
	// backed by local DRAM (in-memory bit set). Writes do not need a state
	// change; evictions write back to local DRAM only.
	MigratedExclusive
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case MigratedExclusive:
		return "ME"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Dirty reports whether an eviction in this state must write data back.
func (s State) Dirty() bool { return s == Modified || s == MigratedExclusive }

// Valid reports whether the state holds data.
func (s State) Valid() bool { return s != Invalid }

type line struct {
	tag   config.Addr // full line address (tag+index combined; simple and safe)
	state State
	lru   uint64
}

// Eviction describes a line displaced by a fill.
type Eviction struct {
	Line  config.Addr // line address of the victim
	State State       // state at eviction
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Fills      uint64
	Evictions  uint64
	Writebacks uint64 // evictions in a dirty state
}

// Cache is one set-associative cache level.
type Cache struct {
	name    string
	ways    int
	setMask config.Addr
	lines   []line // sets*ways, flat
	tick    uint64
	stats   Stats
}

// New builds a cache from its configuration. The set count must be a power
// of two (config.Validate enforces this).
func New(name string, cfg config.CacheConfig) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets is not a positive power of two", name, sets))
	}
	return &Cache{
		name:    name,
		ways:    cfg.Ways,
		setMask: config.Addr(sets - 1),
		lines:   make([]line, sets*cfg.Ways),
	}
}

func (c *Cache) set(lineAddr config.Addr) []line {
	idx := int(lineAddr&c.setMask) * c.ways
	return c.lines[idx : idx+c.ways]
}

// Lookup probes for lineAddr. On a hit it refreshes LRU and returns the
// current state; on a miss it returns (Invalid, false).
func (c *Cache) Lookup(lineAddr config.Addr) (State, bool) {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			c.tick++
			set[i].lru = c.tick
			c.stats.Hits++
			return set[i].state, true
		}
	}
	c.stats.Misses++
	return Invalid, false
}

// Peek probes without touching LRU or statistics (directory queries).
func (c *Cache) Peek(lineAddr config.Addr) (State, bool) {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			return set[i].state, true
		}
	}
	return Invalid, false
}

// Fill installs lineAddr in state st, returning the eviction it displaced
// (ok=false when an invalid way was available). Filling a line that is
// already present just updates its state.
func (c *Cache) Fill(lineAddr config.Addr, st State) (ev Eviction, evicted bool) {
	if st == Invalid {
		panic("cache: Fill with Invalid state")
	}
	set := c.set(lineAddr)
	c.tick++
	// Already present: state upgrade/downgrade in place.
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			set[i].state = st
			set[i].lru = c.tick
			return Eviction{}, false
		}
	}
	// Prefer an invalid way.
	victim := 0
	found := false
	for i := range set {
		if set[i].state == Invalid {
			victim, found = i, true
			break
		}
	}
	if !found {
		// LRU victim.
		oldest := set[0].lru
		for i := 1; i < c.ways; i++ {
			if set[i].lru < oldest {
				oldest, victim = set[i].lru, i
			}
		}
		ev = Eviction{Line: set[victim].tag, State: set[victim].state}
		evicted = true
		c.stats.Evictions++
		if ev.State.Dirty() {
			c.stats.Writebacks++
		}
	}
	set[victim] = line{tag: lineAddr, state: st, lru: c.tick}
	c.stats.Fills++
	return ev, evicted
}

// SetState changes the state of a resident line; it reports whether the
// line was present.
func (c *Cache) SetState(lineAddr config.Addr, st State) bool {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			if st == Invalid {
				set[i] = line{}
				return true
			}
			set[i].state = st
			return true
		}
	}
	return false
}

// Invalidate drops lineAddr, returning its state at invalidation so the
// caller can issue a writeback for dirty data.
func (c *Cache) Invalidate(lineAddr config.Addr) (State, bool) {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			st := set[i].state
			set[i] = line{}
			return st, true
		}
	}
	return Invalid, false
}

// InvalidateAll drops every line, invoking fn (when non-nil) for each valid
// line first. Used for whole-page remap invalidations and test teardown.
func (c *Cache) InvalidateAll(fn func(config.Addr, State)) {
	for i := range c.lines {
		if c.lines[i].state != Invalid {
			if fn != nil {
				fn(c.lines[i].tag, c.lines[i].state)
			}
			c.lines[i] = line{}
		}
	}
}

// InvalidatePage drops every resident line of the given page, invoking fn
// for each valid line dropped. Page-granularity migration uses this.
func (c *Cache) InvalidatePage(page config.Addr, fn func(config.Addr, State)) {
	base := page << config.PageLineShift
	for l := config.Addr(0); l < config.LinesPerPage; l++ {
		lineAddr := base + l
		set := c.set(lineAddr)
		for i := range set {
			if set[i].state != Invalid && set[i].tag == lineAddr {
				if fn != nil {
					fn(set[i].tag, set[i].state)
				}
				set[i] = line{}
			}
		}
	}
}

// ForEach invokes fn for every valid line without touching LRU order or
// statistics. The runtime invariant auditor walks cache contents through
// this; it must stay observation-only so audited runs are bit-identical.
func (c *Cache) ForEach(fn func(lineAddr config.Addr, st State)) {
	for i := range c.lines {
		if c.lines[i].state != Invalid {
			fn(c.lines[i].tag, c.lines[i].state)
		}
	}
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].state != Invalid {
			n++
		}
	}
	return n
}

// Stats returns accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// Name returns the cache's diagnostic name.
func (c *Cache) Name() string { return c.name }
