package cache

import (
	"testing"

	"pipm/internal/config"
)

func BenchmarkLookupHit(b *testing.B) {
	c := New("b", config.CacheConfig{SizeBytes: 2 << 20, Ways: 16})
	c.Fill(42, Shared)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(42)
	}
}

func BenchmarkFillEvict(b *testing.B) {
	c := New("b", config.CacheConfig{SizeBytes: 32 << 10, Ways: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(config.Addr(i), Exclusive)
	}
}

func BenchmarkInvalidatePage(b *testing.B) {
	c := New("b", config.CacheConfig{SizeBytes: 2 << 20, Ways: 16})
	for l := config.Addr(0); l < config.LinesPerPage; l++ {
		c.Fill(l, Modified)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.InvalidatePage(0, nil)
	}
}
