package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pipm/internal/config"
)

func small() *Cache {
	// 4 sets × 2 ways.
	return New("t", config.CacheConfig{SizeBytes: 4 * 2 * config.LineBytes, Ways: 2})
}

func TestStateString(t *testing.T) {
	cases := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", MigratedExclusive: "ME", State(9): "State(9)"}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestStatepredicates(t *testing.T) {
	if !Modified.Dirty() || !MigratedExclusive.Dirty() {
		t.Error("M/ME should be dirty")
	}
	if Shared.Dirty() || Exclusive.Dirty() || Invalid.Dirty() {
		t.Error("S/E/I should be clean")
	}
	if Invalid.Valid() || !Shared.Valid() {
		t.Error("Valid() wrong")
	}
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if _, ok := c.Lookup(100); ok {
		t.Fatal("hit in empty cache")
	}
	c.Fill(100, Shared)
	st, ok := c.Lookup(100)
	if !ok || st != Shared {
		t.Fatalf("after fill: Lookup = %v,%v", st, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Fills != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Three lines mapping to set 0 (4 sets → stride 4 in line space).
	c.Fill(0, Exclusive)
	c.Fill(4, Shared)
	c.Lookup(0) // make line 0 MRU
	ev, evicted := c.Fill(8, Modified)
	if !evicted {
		t.Fatal("third fill into 2-way set did not evict")
	}
	if ev.Line != 4 || ev.State != Shared {
		t.Fatalf("evicted %+v, want line 4 in S", ev)
	}
	if _, ok := c.Peek(0); !ok {
		t.Fatal("MRU line 0 was evicted")
	}
}

func TestFillExistingUpdatesState(t *testing.T) {
	c := small()
	c.Fill(12, Shared)
	if _, evicted := c.Fill(12, Modified); evicted {
		t.Fatal("refill of resident line evicted something")
	}
	if st, _ := c.Peek(12); st != Modified {
		t.Fatalf("state after refill = %v, want M", st)
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", c.Occupancy())
	}
}

func TestFillInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fill(Invalid) did not panic")
		}
	}()
	small().Fill(5, Invalid)
}

func TestWritebackCounting(t *testing.T) {
	c := small()
	c.Fill(0, Modified)
	c.Fill(4, Shared)
	c.Fill(8, Shared)  // evicts line 0 (M) → writeback
	c.Fill(12, Shared) // evicts line 4 (S) → clean
	s := c.Stats()
	if s.Evictions != 2 || s.Writebacks != 1 {
		t.Fatalf("evictions/writebacks = %d/%d, want 2/1", s.Evictions, s.Writebacks)
	}
}

func TestSetStateAndInvalidate(t *testing.T) {
	c := small()
	c.Fill(7, Exclusive)
	if !c.SetState(7, Modified) {
		t.Fatal("SetState on resident line failed")
	}
	if st, _ := c.Peek(7); st != Modified {
		t.Fatalf("state = %v", st)
	}
	if c.SetState(999, Shared) {
		t.Fatal("SetState on absent line succeeded")
	}
	st, ok := c.Invalidate(7)
	if !ok || st != Modified {
		t.Fatalf("Invalidate = %v,%v", st, ok)
	}
	if _, ok := c.Peek(7); ok {
		t.Fatal("line survived Invalidate")
	}
	if _, ok := c.Invalidate(7); ok {
		t.Fatal("double Invalidate reported a line")
	}
	// SetState(Invalid) also drops the line.
	c.Fill(9, Shared)
	c.SetState(9, Invalid)
	if _, ok := c.Peek(9); ok {
		t.Fatal("SetState(Invalid) did not drop the line")
	}
}

func TestInvalidatePage(t *testing.T) {
	cfg := config.CacheConfig{SizeBytes: 256 * 8 * config.LineBytes, Ways: 8}
	c := New("big", cfg)
	page := config.Addr(3)
	base := page << config.PageLineShift
	for l := config.Addr(0); l < config.LinesPerPage; l += 2 {
		c.Fill(base+l, Modified)
	}
	c.Fill(base+config.LinesPerPage, Shared) // first line of next page
	var dropped []config.Addr
	c.InvalidatePage(page, func(a config.Addr, st State) {
		if st != Modified {
			t.Errorf("dropped line %d in state %v", a, st)
		}
		dropped = append(dropped, a)
	})
	if len(dropped) != config.LinesPerPage/2 {
		t.Fatalf("dropped %d lines, want %d", len(dropped), config.LinesPerPage/2)
	}
	if _, ok := c.Peek(base + config.LinesPerPage); !ok {
		t.Fatal("neighbouring page's line was dropped")
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", c.Occupancy())
	}
}

func TestInvalidateAll(t *testing.T) {
	c := small()
	c.Fill(1, Shared)
	c.Fill(2, Modified)
	n := 0
	c.InvalidateAll(func(config.Addr, State) { n++ })
	if n != 2 || c.Occupancy() != 0 {
		t.Fatalf("InvalidateAll dropped %d, occupancy %d", n, c.Occupancy())
	}
}

func TestPeekDoesNotPerturb(t *testing.T) {
	c := small()
	c.Fill(0, Shared)
	c.Fill(4, Shared)
	// Peek line 0 many times; it must NOT refresh LRU, so it gets evicted.
	for i := 0; i < 10; i++ {
		c.Peek(0)
	}
	c.Lookup(4) // real touch makes 4 MRU
	ev, evicted := c.Fill(8, Shared)
	if !evicted || ev.Line != 0 {
		t.Fatalf("evicted %+v, want line 0 (Peek must not refresh LRU)", ev)
	}
	s := c.Stats()
	if s.Hits != 1 {
		t.Fatalf("Peek affected hit stats: %+v", s)
	}
}

// Property: occupancy never exceeds capacity, and a just-filled line is
// always present.
func TestCapacityProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := small()
		cap := 4 * 2
		for _, a := range addrs {
			la := config.Addr(a)
			c.Fill(la, Shared)
			if _, ok := c.Peek(la); !ok {
				return false
			}
			if c.Occupancy() > cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Fill's eviction accounting is exact — every line filled is
// either still resident or was returned as an eviction/invalidation.
func TestEvictionConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New("t", config.CacheConfig{SizeBytes: 16 * 4 * config.LineBytes, Ways: 4})
	live := make(map[config.Addr]bool)
	for i := 0; i < 5000; i++ {
		la := config.Addr(rng.Intn(256))
		ev, evicted := c.Fill(la, Shared)
		live[la] = true
		if evicted {
			if !live[ev.Line] {
				t.Fatalf("evicted line %d that was never live", ev.Line)
			}
			delete(live, ev.Line)
		}
	}
	if len(live) != c.Occupancy() {
		t.Fatalf("ledger has %d lines, cache has %d", len(live), c.Occupancy())
	}
	for la := range live {
		if _, ok := c.Peek(la); !ok {
			t.Fatalf("ledger line %d missing from cache", la)
		}
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two sets")
		}
	}()
	New("bad", config.CacheConfig{SizeBytes: 3 * config.LineBytes, Ways: 1})
}
