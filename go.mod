module pipm

go 1.22
