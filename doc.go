// Package pipm is a from-scratch reproduction of "PIPM: Partial and
// Incremental Page Migration for Multi-host CXL Disaggregated Shared
// Memory" (Huang, Litz, Xu — ASPLOS 2026).
//
// PIPM keeps shared pages logically in the CXL memory pool but lets each
// host absorb the cache blocks it actually uses into its local DRAM:
// migration decisions come from a Boyer–Moore-style majority vote over page
// accesses, data movement piggybacks on ordinary cache fills and evictions
// ("incremental"), and coherence is preserved by two new states (ME and I')
// plus a one-bit in-memory state per cache block, layered on the multi-host
// MESI directory protocol.
//
// The package exposes four layers:
//
//   - A deterministic multi-host CXL-DSM architectural simulator
//     (NewMachine): out-of-order-window cores, private L1Ds, shared LLCs,
//     bank-aware DDR5 timing, bandwidth-queued CXL links, and the device
//     coherence directory.
//   - Eight page-placement schemes (Scheme): the Native baseline, four
//     kernel-based policies (Nomad, Memtis, HeMem, OS-skew), the HW-static
//     ablation, full PIPM, and the Local-only upper bound.
//   - Synthetic workload models (Workloads) standing in for the paper's
//     thirteen Pin-traced benchmarks.
//   - An experiment harness (NewSuite) that regenerates every table and
//     figure of the paper's evaluation, plus a Murφ-style model checker
//     (VerifyCoherence) for the PIPM protocol itself.
//
// Quick start:
//
//	cfg := pipm.DefaultConfig()
//	wl, _ := pipm.WorkloadByName("pr")
//	res, _ := pipm.Run(cfg, wl, pipm.PIPM, 100_000, 1)
//	fmt.Printf("IPC %.2f, local hit rate %.0f%%\n", res.IPC, 100*res.LocalHitRate)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// versus published numbers.
package pipm
