package pipm_test

// One testing.B benchmark per paper artefact (Tables 1–2, Figures 4–5 and
// 10–17) plus ablation benches for the design choices DESIGN.md §6 calls
// out. Each benchmark runs a reduced instance of its experiment per
// iteration and reports the figure's headline metric via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the whole evaluation at small
// scale. cmd/experiments produces the full-scale tables.

import (
	"fmt"
	"testing"

	"pipm"
	"pipm/internal/config"
)

// benchOptions is the reduced sweep every benchmark shares.
func benchOptions() pipm.SuiteOptions {
	o := pipm.QuickSuiteOptions()
	o.RecordsPerCore = 30_000
	return o
}

func benchRun(b *testing.B, wlName string, k pipm.Scheme) pipm.Result {
	b.Helper()
	o := benchOptions()
	wl, err := pipm.WorkloadByName(wlName)
	if err != nil {
		b.Fatal(err)
	}
	res, err := pipm.Run(o.Cfg, wl, k, o.RecordsPerCore, o.Seed)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkTable1Workloads(b *testing.B) {
	// Exercise every catalog generator end to end (trace generation only).
	o := benchOptions()
	am := config.NewAddressMap(&o.Cfg)
	for i := 0; i < b.N; i++ {
		for _, wl := range pipm.Workloads() {
			r := wl.NewReader(am, o.Cfg.Hosts, 0, 0, 5_000, 1)
			n := 0
			for {
				if _, ok := r.Next(); !ok {
					break
				}
				n++
			}
			if n != 5_000 {
				b.Fatalf("%s yielded %d records", wl.Name, n)
			}
		}
	}
}

func BenchmarkTable2Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := pipm.DefaultConfig()
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
		if pipm.Table2(cfg) == "" {
			b.Fatal("empty rendering")
		}
	}
}

func BenchmarkFig4MigrationIntervals(b *testing.B) {
	o := benchOptions()
	wl, _ := pipm.WorkloadByName("pr")
	for i := 0; i < b.N; i++ {
		nat, err := pipm.Run(o.Cfg, wl, pipm.Native, o.RecordsPerCore, o.Seed)
		if err != nil {
			b.Fatal(err)
		}
		for _, scale := range []pipm.Time{10, 1} { // paper-equivalent 100ms, 10ms
			cfg := o.Cfg
			cfg.Kernel.Interval = o.Cfg.Kernel.Interval * scale
			res, err := pipm.Run(cfg, wl, pipm.Memtis, o.RecordsPerCore, o.Seed)
			if err != nil {
				b.Fatal(err)
			}
			if scale == 1 {
				b.ReportMetric(float64(res.ExecTime)/float64(nat.ExecTime), "normTime@10ms")
				b.ReportMetric(100*res.MgmtStallFrac, "mgmt%")
				b.ReportMetric(100*res.TransferFrac, "transfer%")
			}
		}
	}
}

func BenchmarkFig5HarmfulMigrations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchRun(b, "ycsb", pipm.Nomad)
		b.ReportMetric(100*res.HarmfulFrac, "harmful%")
	}
}

func BenchmarkFig10EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nat := benchRun(b, "pr", pipm.Native)
		res := benchRun(b, "pr", pipm.PIPM)
		b.ReportMetric(pipm.Speedup(res, nat), "speedup")
	}
}

func BenchmarkFig11LocalHitRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchRun(b, "pr", pipm.PIPM)
		b.ReportMetric(100*res.LocalHitRate, "localHit%")
	}
}

func BenchmarkFig12InterHostStalls(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchRun(b, "pr", pipm.PIPM)
		b.ReportMetric(100*res.InterStallFrac, "interStall%")
	}
}

func BenchmarkFig13Footprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchRun(b, "pr", pipm.PIPM)
		b.ReportMetric(100*res.PageFootprintFrac, "pages%")
		b.ReportMetric(100*res.LineFootprintFrac, "lines%")
	}
}

func BenchmarkFig14LinkLatency(b *testing.B) {
	o := benchOptions()
	wl, _ := pipm.WorkloadByName("cc")
	for i := 0; i < b.N; i++ {
		for _, lat := range []pipm.Time{50 * pipm.Nanosecond, 100 * pipm.Nanosecond} {
			cfg := o.Cfg
			cfg.CXL.LinkLatency = lat
			nat, err := pipm.Run(cfg, wl, pipm.Native, o.RecordsPerCore, o.Seed)
			if err != nil {
				b.Fatal(err)
			}
			res, err := pipm.Run(cfg, wl, pipm.PIPM, o.RecordsPerCore, o.Seed)
			if err != nil {
				b.Fatal(err)
			}
			if lat == 100*pipm.Nanosecond {
				b.ReportMetric(pipm.Speedup(res, nat), "speedup@100ns")
			}
		}
	}
}

func BenchmarkFig15LinkBandwidth(b *testing.B) {
	o := benchOptions()
	wl, _ := pipm.WorkloadByName("cc")
	for i := 0; i < b.N; i++ {
		for _, bw := range []float64{2.5e9, 5e9} {
			cfg := o.Cfg
			cfg.CXL.LinkBW = bw
			nat, err := pipm.Run(cfg, wl, pipm.Native, o.RecordsPerCore, o.Seed)
			if err != nil {
				b.Fatal(err)
			}
			res, err := pipm.Run(cfg, wl, pipm.PIPM, o.RecordsPerCore, o.Seed)
			if err != nil {
				b.Fatal(err)
			}
			if bw == 2.5e9 {
				b.ReportMetric(pipm.Speedup(res, nat), "speedup@x8")
			}
		}
	}
}

func BenchmarkFig16LocalRemapCache(b *testing.B) {
	o := benchOptions()
	wl, _ := pipm.WorkloadByName("pr")
	for i := 0; i < b.N; i++ {
		small := o.Cfg
		small.PIPM.LocalRemapCacheBytes = 1 << 10
		res, err := pipm.Run(small, wl, pipm.PIPM, o.RecordsPerCore, o.Seed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.LocalRemapHitRate, "remapHit%@1KB")
	}
}

func BenchmarkFig17GlobalRemapCache(b *testing.B) {
	o := benchOptions()
	wl, _ := pipm.WorkloadByName("pr")
	for i := 0; i < b.N; i++ {
		small := o.Cfg
		small.PIPM.GlobalRemapCacheBytes = 512
		res, err := pipm.Run(small, wl, pipm.PIPM, o.RecordsPerCore, o.Seed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.GlobalRemapHitRate, "remapHit%@512B")
	}
}

// --- Ablations (DESIGN.md §6) ---

func BenchmarkAblationVoteThreshold(b *testing.B) {
	o := benchOptions()
	wl, _ := pipm.WorkloadByName("pr")
	for i := 0; i < b.N; i++ {
		for _, th := range []int{4, 8, 16} {
			cfg := o.Cfg
			cfg.PIPM.MigrationThreshold = th
			res, err := pipm.Run(cfg, wl, pipm.PIPM, o.RecordsPerCore, o.Seed)
			if err != nil {
				b.Fatal(err)
			}
			if th == 8 {
				b.ReportMetric(100*res.LocalHitRate, "localHit%@th8")
			}
		}
	}
}

func BenchmarkAblationEMigration(b *testing.B) {
	// Strict M-only incremental migration (the paper's literal Loc-WB rule)
	// versus the E-extension this implementation defaults to.
	o := benchOptions()
	wl, _ := pipm.WorkloadByName("pr")
	for i := 0; i < b.N; i++ {
		strict := o.Cfg
		strict.PIPM.MigrateOnExclusiveEviction = false
		sres, err := pipm.Run(strict, wl, pipm.PIPM, o.RecordsPerCore, o.Seed)
		if err != nil {
			b.Fatal(err)
		}
		eres, err := pipm.Run(o.Cfg, wl, pipm.PIPM, o.RecordsPerCore, o.Seed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*sres.LocalHitRate, "localHit%Monly")
		b.ReportMetric(100*eres.LocalHitRate, "localHit%withE")
	}
}

func BenchmarkAblationVoteVsStatic(b *testing.B) {
	// PIPM's adaptive vote versus HW-static's fixed mapping on the same
	// partitioned workload (the Fig. 10 OS-skew/HW-static ablation pair).
	for i := 0; i < b.N; i++ {
		vote := benchRun(b, "pr", pipm.PIPM)
		static := benchRun(b, "pr", pipm.HWStatic)
		b.ReportMetric(float64(static.ExecTime)/float64(vote.ExecTime), "voteAdvantage")
	}
}

// --- Telemetry overhead (DESIGN.md §10) ---

func BenchmarkTelemetryDisabledOverhead(b *testing.B) {
	// The disabled-telemetry pin: this is the exact hot path every run
	// executes, with nil instrument handles. Compare against
	// BenchmarkTelemetryEnabled (and historical BENCH_*.json) to confirm the
	// nil-check fast path stays within the §10 ≤2% budget.
	o := benchOptions()
	wl, _ := pipm.WorkloadByName("pr")
	for i := 0; i < b.N; i++ {
		res, err := pipm.Run(o.Cfg, wl, pipm.Nomad, o.RecordsPerCore, o.Seed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Instructions)/b.Elapsed().Seconds()/float64(b.N), "instr/s")
	}
}

func BenchmarkTelemetryEnabled(b *testing.B) {
	// Same run with sampling and tracing on — the cost ceiling for -timeseries
	// -trace sweeps.
	o := benchOptions()
	wl, _ := pipm.WorkloadByName("pr")
	topt := pipm.TelemetryOptions{SampleInterval: 10 * pipm.Microsecond, Trace: true}
	for i := 0; i < b.N; i++ {
		res, tout, err := pipm.RunWithTelemetry(o.Cfg, wl, pipm.Nomad, o.RecordsPerCore, o.Seed, topt)
		if err != nil {
			b.Fatal(err)
		}
		if tout == nil || tout.Series == nil || len(tout.Series.Samples) == 0 {
			b.Fatal("enabled telemetry collected nothing")
		}
		b.ReportMetric(float64(res.Instructions)/b.Elapsed().Seconds()/float64(b.N), "instr/s")
	}
}

// BenchmarkAccessPath runs one reduced simulation per scheme family,
// end to end. The companion white-box benchmark of the same name in
// internal/machine isolates the bare hierarchy walk and is the 0 allocs/op
// guard for the DESIGN.md §11 layered memory path; this one pins each
// family's full records/s so a route-module regression shows up in the
// wall-clock trend even when it stays allocation-free.
func BenchmarkAccessPath(b *testing.B) {
	o := benchOptions()
	wl, _ := pipm.WorkloadByName("pr")
	families := []struct {
		name string
		k    pipm.Scheme
	}{
		{"native", pipm.Native},
		{"kernel", pipm.Memtis},
		{"hardware", pipm.PIPM},
		{"local-only", pipm.LocalOnly},
	}
	records := int64(20_000)
	for _, f := range families {
		b.Run(f.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pipm.Run(o.Cfg, wl, f.k, records, o.Seed); err != nil {
					b.Fatal(err)
				}
			}
			total := float64(records) * float64(o.Cfg.Hosts*o.Cfg.CoresPerHost) * float64(b.N)
			b.ReportMetric(total/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkAccessPathMultiHost pins the sequential-versus-PDES throughput
// contrast at 4 and 64 hosts: the "seq" sub-benchmarks run the classic
// single-heap engine, "pdes" the partitioned windowed engine. Both must
// produce bit-identical Results (checked every iteration); the records/s
// metrics land in BENCH_quick.json via the cmd/experiments -json
// -intra-parallel path. The 64-host pair runs the sharded directory and the
// full-width sharer bitmask with per-core records scaled down so total
// trace volume matches the 4-host pair's. On a single-core runner the PDES
// numbers trail sequential — the prepare pool only pays for itself when
// GOMAXPROCS allows the per-host fills to overlap (DESIGN.md §13.5).
func BenchmarkAccessPathMultiHost(b *testing.B) {
	o := benchOptions()
	wl, _ := pipm.WorkloadByName("pr")
	for _, hosts := range []int{4, 64} {
		cfg := pipm.ScaleForHosts(o.Cfg, hosts)
		records := pipm.ClusterScaleRecords(20_000, 4, hosts)
		workers := hosts
		if workers > 8 {
			workers = 8
		}
		total := func(n int) float64 {
			return float64(records) * float64(cfg.Hosts*cfg.CoresPerHost) * float64(n)
		}
		want, err := pipm.Run(cfg, wl, pipm.PIPM, records, o.Seed)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("seq-%dh", hosts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := pipm.Run(cfg, wl, pipm.PIPM, records, o.Seed)
				if err != nil {
					b.Fatal(err)
				}
				if res != want {
					b.Fatal("sequential run diverged from itself")
				}
			}
			b.ReportMetric(total(b.N)/b.Elapsed().Seconds(), "records/s")
		})
		b.Run(fmt.Sprintf("pdes-%dh", hosts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := pipm.RunIntra(cfg, wl, pipm.PIPM, records, o.Seed, workers)
				if err != nil {
					b.Fatal(err)
				}
				if res != want {
					b.Fatal("PDES run is not bit-identical to the sequential engine")
				}
			}
			b.ReportMetric(total(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	// Raw simulation speed: records simulated per second of wall time.
	o := benchOptions()
	wl, _ := pipm.WorkloadByName("streamcluster")
	records := int64(20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipm.Run(o.Cfg, wl, pipm.PIPM, records, o.Seed); err != nil {
			b.Fatal(err)
		}
	}
	total := float64(records) * float64(o.Cfg.Hosts*o.Cfg.CoresPerHost) * float64(b.N)
	b.ReportMetric(total/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkAlgorithmicGraphTrace(b *testing.B) {
	// Ground-truth PageRank trace generation + simulation end to end.
	o := benchOptions()
	g := pipm.KroneckerGraph(12, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := pipm.NewMachine(o.Cfg, pipm.PIPM)
		if err != nil {
			b.Fatal(err)
		}
		if err := pipm.AttachGraphKernel(m, g, pipm.KernelPageRank, 30_000, 1); err != nil {
			b.Fatal(err)
		}
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgorithmicStoreTrace(b *testing.B) {
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := pipm.NewMachine(o.Cfg, pipm.PIPM)
		if err != nil {
			b.Fatal(err)
		}
		if err := pipm.AttachStoreWorkload(m, pipm.StoreTPCC, 16, 30_000, 1); err != nil {
			b.Fatal(err)
		}
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
