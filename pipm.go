package pipm

import (
	"io"

	"pipm/internal/check"
	"pipm/internal/config"
	"pipm/internal/core"
	"pipm/internal/gapbs"
	"pipm/internal/harness"
	"pipm/internal/machine"
	"pipm/internal/migration"
	"pipm/internal/silo"
	"pipm/internal/sim"
	"pipm/internal/store"
	"pipm/internal/telemetry"
	"pipm/internal/trace"
	"pipm/internal/workload"
)

// Config describes the simulated system (Table 2 of the paper): hosts,
// cores, cache geometry, DRAM timing, CXL link parameters, PIPM hardware
// parameters, and kernel-migration cost constants.
type Config = config.Config

// MaxHosts is the largest cluster a configuration may describe.
const MaxHosts = config.MaxHosts

// Time is simulated time in picoseconds.
type Time = sim.Time

// Common durations re-exported for configuring sweeps.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// Scheme selects the page-placement scheme a Machine evaluates.
type Scheme = migration.Kind

// The eight schemes of the paper's evaluation (§5.1.3).
const (
	Native    = migration.Native
	Nomad     = migration.Nomad
	Memtis    = migration.Memtis
	HeMem     = migration.HeMem
	OSSkew    = migration.OSSkew
	HWStatic  = migration.HWStatic
	PIPM      = migration.PIPM
	LocalOnly = migration.LocalOnly
)

// Schemes lists every scheme in the paper's presentation order.
func Schemes() []Scheme { return append([]Scheme(nil), migration.Kinds...) }

// SchemeInfo is one scheme-registry descriptor: name, family, one-line
// description, and the family knobs (see internal/migration and DESIGN.md
// §11). The registry is the single source of truth both CLIs and the
// harness enumerate.
type SchemeInfo = migration.Scheme

// RegisteredSchemes returns every scheme descriptor in presentation order.
func RegisteredSchemes() []SchemeInfo { return migration.Registered() }

// SchemeNames lists registered scheme names in presentation order.
func SchemeNames() []string { return migration.Names() }

// ParseScheme resolves a scheme name ("pipm", "native", "hw-static", ...).
func ParseScheme(s string) (Scheme, error) { return migration.ParseKind(s) }

// Workload is a synthetic model of one Table 1 benchmark.
type Workload = workload.Params

// Workloads returns the full Table 1 catalog.
func Workloads() []Workload { return workload.Catalog() }

// ProductionWorkloads returns the production-service workload family: the
// mechanistic multi-host LLM serving (llmserve) and DAXFS shared-filesystem
// (daxfs) models.
func ProductionWorkloads() []Workload { return workload.Production() }

// AllWorkloads returns every registered workload: the Table 1 catalog
// followed by the production-service family.
func AllWorkloads() []Workload { return workload.All() }

// WorkloadByName returns the registered workload with the given name.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// WorkloadNames lists every registered workload name in order.
func WorkloadNames() []string { return workload.Names() }

// DefaultConfig returns the paper's Table 2 configuration at full scale.
func DefaultConfig() Config { return config.Default() }

// ScaledConfig returns the laptop-scale configuration the experiment
// harness uses (same ratios, smaller footprint; see DESIGN.md §1).
func ScaledConfig() Config { return harness.DefaultOptions().Cfg }

// Machine is one configured multi-host CXL-DSM system instance. Attach one
// trace per core with SetTrace, call Run once, then read Stats.
type Machine = machine.Machine

// NewMachine builds a machine for the given configuration and scheme.
func NewMachine(cfg Config, s Scheme) (*Machine, error) { return machine.New(cfg, s) }

// TraceReader yields one core's memory-reference records in program order.
type TraceReader = trace.Reader

// TraceRecord is one memory operation preceded by Gap non-memory
// instructions.
type TraceRecord = trace.Record

// Result is one (workload, scheme) measurement with the metrics the
// paper's figures report.
type Result = harness.Result

// Run executes a single simulation: cfg and scheme define the machine, wl
// generates records per-core traces seeded by seed.
func Run(cfg Config, wl Workload, s Scheme, records, seed int64) (Result, error) {
	return harness.RunOne(cfg, wl, s, records, seed)
}

// TelemetryOptions configures the sim-time observability subsystem: a
// sampling interval for interval time-series, and/or a bounded protocol
// event trace. The zero value is disabled and costs one predictable branch
// on the simulator's hot paths.
type TelemetryOptions = telemetry.Options

// TelemetryOutput is one run's collected telemetry: the sampled time-series,
// final latency histograms, and the protocol event trace.
type TelemetryOutput = telemetry.Output

// RunWithTelemetry is Run plus telemetry collection. The returned output is
// nil when topt is disabled; telemetry never changes the Result.
func RunWithTelemetry(cfg Config, wl Workload, s Scheme, records, seed int64,
	topt TelemetryOptions) (Result, *TelemetryOutput, error) {
	return harness.RunOneT(cfg, wl, s, records, seed, topt)
}

// IntraOptions configures intra-run parallel simulation (conservative
// PDES): the machine partitions its event engine per host and prefetches
// trace records on Workers goroutines between lookahead windows, while
// commits stay serialised in global order — results are bit-identical to
// the sequential engine at any worker count (DESIGN.md §13). The zero value
// keeps the classic sequential engine.
type IntraOptions = machine.IntraOptions

// RunOptions bundles the optional per-run subsystems: telemetry collection,
// the runtime invariant auditor, and the intra-run parallel engine. Each
// field's zero value disables its subsystem.
type RunOptions = harness.RunOpts

// RunWithOptions is Run with any combination of optional subsystems
// attached. The returned telemetry is nil when telemetry is disabled; an
// enabled auditor fails the run on any invariant violation.
func RunWithOptions(cfg Config, wl Workload, s Scheme, records, seed int64,
	o RunOptions) (Result, *TelemetryOutput, error) {
	r, tout, rep, err := harness.RunOneOpts(cfg, wl, s, records, seed, o)
	if err == nil {
		err = rep.Err()
	}
	return r, tout, err
}

// RunIntra is Run on the intra-run parallel engine with the given prepare
// worker count (see IntraOptions); workers ≤ 0 runs the sequential engine.
func RunIntra(cfg Config, wl Workload, s Scheme, records, seed int64, workers int) (Result, error) {
	if workers <= 0 {
		return Run(cfg, wl, s, records, seed)
	}
	r, _, _, err := harness.RunOneOpts(cfg, wl, s, records, seed,
		harness.RunOpts{Intra: IntraOptions{Workers: workers}})
	return r, err
}

// Speedup returns base's execution time over r's (>1 ⇒ r is faster).
func Speedup(r, base Result) float64 { return harness.Speedup(r, base) }

// Suite runs the paper's experiments (Figures 4–5 and 10–17) over one
// option set. Every simulation flows through a run-graph engine that
// deduplicates runs by canonical key (RunKeyOf) and executes them on a
// worker pool bounded by SuiteOptions.Workers; rendered artefacts are
// byte-identical for any worker count.
type Suite = harness.Suite

// SuiteOptions configures an experiment sweep, including the engine's
// Workers bound and optional Progress writer.
type SuiteOptions = harness.Options

// RunStats is the engine's observability record for one executed
// simulation: wall-clock, simulated time, instruction throughput and memo
// hits. Suite.RunStats returns one per deduplicated run.
type RunStats = harness.RunStats

// RunKeyOf returns the canonical run key (hex) identifying one simulation:
// a digest of the full configuration, complete workload parameters, scheme,
// per-core record budget and seed. Equal keys ⇒ bit-identical results.
func RunKeyOf(cfg Config, wl Workload, s Scheme, records, seed int64) string {
	return harness.KeyOf(cfg, wl, s, records, seed).String()
}

// ResultStore is the disk-backed, content-addressed result store
// (DESIGN.md §14): a directory of verified, atomically-written entries keyed
// by canonical run key. Attach one via SuiteOptions.Store and the engine's
// in-memory memo falls through to disk before simulating, so a repeated
// sweep in a fresh process re-simulates nothing.
type ResultStore = store.Store

// StoreEntryInfo describes one stored entry (key, size, mtime) for listings
// and GC decisions.
type StoreEntryInfo = store.EntryInfo

// OpenStore opens dir as a result store, creating it if needed, and probes
// it for writability so an unusable store path fails before any simulation.
func OpenStore(dir string) (*ResultStore, error) { return store.Open(dir) }

// StoreStats is one engine's result-store traffic: runs answered from disk
// (hits), runs that had to simulate (misses), entries that failed
// verification and were re-simulated (corrupt), and write-backs (saves).
type StoreStats = harness.StoreStats

// ErrStoreMiss reports a key with no stored entry — the ordinary cold-cache
// outcome of ResultStore.Load.
var ErrStoreMiss = store.ErrMiss

// IsStoreCorrupt reports whether err marks a store entry that failed
// verification (and was therefore treated as a miss).
func IsStoreCorrupt(err error) bool { return store.IsCorrupt(err) }

// DecodeStoredResult decodes and digest-verifies one store entry body,
// returning the Result and whether telemetry was attached. cmd/storecheck
// uses this to deep-verify entries beyond the container checksum.
func DecodeStoredResult(body []byte) (Result, bool, error) {
	return harness.DecodeStoredResult(body)
}

// WriteFileAtomic atomically replaces path with data: the write is staged in
// a temp file in the destination directory, fsynced, then renamed into
// place. Every durable artefact the CLIs emit goes through this — a crash
// mid-write must never leave a truncated document behind.
func WriteFileAtomic(path string, data []byte) error { return store.WriteFileAtomic(path, data) }

// WriteToAtomic is WriteFileAtomic for streamed exports too large to buffer.
func WriteToAtomic(path string, write func(io.Writer) error) error {
	return store.WriteToAtomic(path, write)
}

// ProbeOutputFile verifies up front that path can be created (parent exists,
// is writable, path is not a directory), so a doomed sweep fails in
// milliseconds instead of at export time.
func ProbeOutputFile(path string) error { return store.ProbeFile(path) }

// Runner is the run-graph engine's direct face for callers that want
// memoised, store-backed, bounded-parallel execution of individual requests
// without the Suite's figure builders.
type Runner = harness.Runner

// RunRequest names one simulation for a Runner: configuration, workload,
// scheme, budget, seed and the optional subsystems that join the run
// identity when enabled.
type RunRequest = harness.RunRequest

// NewRunner builds a Runner from a SuiteOptions (Workers, Progress and Store
// are honoured; the sweep-shaping fields are ignored).
func NewRunner(o SuiteOptions) *Runner { return harness.NewRunnerOpts(o) }

// Table is a rendered experiment artefact.
type Table = harness.Table

// NewSuite builds an experiment suite.
func NewSuite(o SuiteOptions) *Suite { return harness.NewSuite(o) }

// DefaultSuiteOptions returns the scaled-down sweep configuration used for
// EXPERIMENTS.md.
func DefaultSuiteOptions() SuiteOptions { return harness.DefaultOptions() }

// QuickSuiteOptions returns a small configuration suitable for tests and
// demos (three workloads, short traces).
func QuickSuiteOptions() SuiteOptions { return harness.QuickOptions() }

// ScaleForHosts derives the cluster-size variant of a configuration: the
// host count plus a directory sliced for it (the cluster-scale experiment's
// config rule).
func ScaleForHosts(cfg Config, hosts int) Config { return harness.ScaleForHosts(cfg, hosts) }

// ClusterScaleRecords scales a per-core record budget inversely with the
// host count, keeping total trace volume near the base configuration's.
func ClusterScaleRecords(recordsPerCore int64, baseHosts, hosts int) int64 {
	return harness.ClusterScaleRecords(recordsPerCore, baseHosts, hosts)
}

// ClusterScaleHosts is the default host ladder of the cluster-scale
// experiment.
func ClusterScaleHosts() []int { return harness.ClusterScaleHosts() }

// Table1 renders the workload catalog; Table2 renders a configuration.
func Table1() string           { return harness.Table1() }
func Table2(cfg Config) string { return harness.Table2(cfg) }

// Graph is a CSR graph for the algorithmic workload generators.
type Graph = gapbs.Graph

// GraphKernel selects the graph algorithm AttachGraphKernel executes.
type GraphKernel = gapbs.Kernel

// The GAP kernels the algorithmic generator can execute.
const (
	KernelPageRank = gapbs.PageRank
	KernelBFS      = gapbs.BFS
	KernelSSSP     = gapbs.SSSP
)

// KroneckerGraph builds an RMAT/Kronecker graph (2^scale vertices, ≈degree
// edges per vertex) with the Graph500 parameters the GAP suite specifies.
func KroneckerGraph(scale, degree int, seed int64) *Graph {
	return gapbs.Kronecker(scale, degree, seed)
}

// AttachGraphKernel lays g out in m's shared heap (vertex arrays plus CSR
// adjacency, partitioned by vertex ownership) and attaches one trace reader
// per core that actually executes the kernel, emitting its true memory
// accesses — the mechanistic alternative to the statistical Workloads.
func AttachGraphKernel(m *Machine, g *Graph, k GraphKernel, records, seed int64) error {
	cfg := m.Config()
	layout, err := gapbs.NewLayout(m.AddressMap(), g, cfg.Hosts)
	if err != nil {
		return err
	}
	for h := 0; h < cfg.Hosts; h++ {
		for c := 0; c < cfg.CoresPerHost; c++ {
			m.SetTrace(h, c, layout.NewReader(k, h, c, cfg.CoresPerHost, records, seed))
		}
	}
	return nil
}

// StoreOp selects the database operation mix AttachStoreWorkload executes.
type StoreOp = silo.Op

// The database operation mixes the mini-Silo store can execute.
const (
	StoreYCSB = silo.YCSB
	StoreTPCC = silo.TPCC
)

// AttachStoreWorkload lays a mini-Silo store (hash directory + partitioned
// record heap) out in m's shared heap and attaches per-core readers that
// execute YCSB point operations or TPC-C-style transactions, emitting their
// true memory accesses. warehouses must be ≥ the host count.
func AttachStoreWorkload(m *Machine, op StoreOp, warehouses, records, seed int64) error {
	cfg := m.Config()
	st, err := silo.NewStore(m.AddressMap(), cfg.Hosts, warehouses)
	if err != nil {
		return err
	}
	for h := 0; h < cfg.Hosts; h++ {
		for c := 0; c < cfg.CoresPerHost; c++ {
			m.SetTrace(h, c, st.NewReader(op, h, c, cfg.CoresPerHost, records, seed))
		}
	}
	return nil
}

// PageHint is the §6 software interface's per-page mode.
type PageHint = core.Hint

// Per-page hint modes: the default majority-vote policy, never-migrate, or
// pinned to one host.
const (
	HintAuto      = core.HintAuto
	HintNoMigrate = core.HintNoMigrate
	HintPinned    = core.HintPinned
)

// CheckResult summarizes a model-checking run of the coherence protocol.
type CheckResult = check.Result

// CheckViolation describes an invariant failure with its witness path.
type CheckViolation = check.Violation

// VerifyCoherence exhaustively model-checks the coherence protocol on a
// small instance (the paper's §5.1.4 Murφ methodology): hosts ∈ {2,3};
// pipmExtension selects base MSI (false) or MSI+PIPM (true). It returns the
// exploration summary and the first invariant violation found, if any.
func VerifyCoherence(hosts int, pipmExtension bool) (CheckResult, *CheckViolation) {
	return check.Run(check.Options{Hosts: hosts, PIPM: pipmExtension})
}

// ParallelCheckResult summarizes a sharded parallel model-checking run.
type ParallelCheckResult = check.PResult

// ParallelCheckViolation is an invariant failure from the parallel checker.
type ParallelCheckViolation = check.PViolation

// VerifyCoherenceParallel model-checks the generalized protocol instance —
// hosts ∈ [2,4], lines ∈ [1,2] of one page coupled through promote/revoke —
// with the sharded worker-pool BFS of internal/check. workers ≤ 0 uses
// GOMAXPROCS. Results are deterministic for any worker count.
func VerifyCoherenceParallel(hosts, lines int, pipmExtension bool, workers int) (ParallelCheckResult, *ParallelCheckViolation) {
	return check.PRun(check.POptions{Hosts: hosts, Lines: lines, PIPM: pipmExtension, Workers: workers})
}
