// Command tracecheck validates telemetry export files: Chrome trace-event
// JSON written by -trace and time-series JSON written by -timeseries. CI runs
// it against the smoke-test exports so a malformed document fails the build
// instead of failing silently in ui.perfetto.dev.
//
// Usage:
//
//	tracecheck -trace tr.json -timeseries ts.json
package main

import (
	"flag"
	"fmt"
	"os"

	"pipm/internal/telemetry"
)

func main() {
	var (
		trPath = flag.String("trace", "", "Chrome trace-event JSON file to validate")
		tsPath = flag.String("timeseries", "", "time-series JSON file to validate")
	)
	flag.Parse()
	if *trPath == "" && *tsPath == "" {
		fatal(fmt.Errorf("nothing to check: pass -trace and/or -timeseries"))
	}
	if *trPath != "" {
		data, err := os.ReadFile(*trPath)
		if err != nil {
			fatal(err)
		}
		if err := telemetry.ValidateChromeTrace(data); err != nil {
			fatal(fmt.Errorf("%s: %w", *trPath, err))
		}
		fmt.Printf("%s: ok\n", *trPath)
	}
	if *tsPath != "" {
		data, err := os.ReadFile(*tsPath)
		if err != nil {
			fatal(err)
		}
		if err := telemetry.ValidateTimeSeries(data); err != nil {
			fatal(fmt.Errorf("%s: %w", *tsPath, err))
		}
		fmt.Printf("%s: ok\n", *tsPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
