// Command validate runs the simulator's validation pass (DESIGN.md §12):
//
//  1. the audited sweep — every scheme × workload with the runtime invariant
//     auditor attached, expecting zero violations;
//  2. the metamorphic relation registry — properties that must hold between
//     related runs (threshold degeneration, zero-sharing inertness, scheme
//     instruction invariance, prefix monotonicity, …);
//  3. multi-seed replication — N seeds per (scheme, workload), reduced to
//     mean ± 95% CI error bars.
//
// All simulations flow through one memoised run-graph engine, so a run
// shared by several phases executes once. The process exits nonzero when any
// phase fails — CI runs `validate -quick` as a gate.
//
// Usage:
//
//	validate -quick                      # CI tier: quick sweep, 5 seeds
//	validate -quick -seeds 3 -parallel 8
//	validate -records 200000 -audit paranoid
//	validate -quick -json validate.json  # machine-readable report
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pipm/internal/audit"
	"pipm/internal/harness"
	"pipm/internal/migration"
	"pipm/internal/store"
	"pipm/internal/validate"
	"pipm/internal/workload"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "use the small quick configuration (the CI tier)")
		records    = flag.Int64("records", 0, "override trace records per core")
		seeds      = flag.Int("seeds", 5, "replication seeds per (scheme, workload)")
		parallel   = flag.Int("parallel", 0, "max simulations in flight (0 = GOMAXPROCS)")
		progress   = flag.Bool("progress", false, "emit per-run progress lines on stderr")
		jsonPath   = flag.String("json", "", "write the machine-readable report to this file")
		auditMode  = flag.String("audit", "quantum", "auditor mode for the audited sweep: off, quantum or paranoid")
		auditEvery = flag.Int("audit-interval", 0, "quanta between periodic sweeps (0 = default)")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default: the tier's set)")
		schemes    = flag.String("schemes", "", "comma-separated scheme subset (default: all registered)")
		storeDir   = flag.String("store", os.Getenv("PIPM_STORE"), "persistent result store directory for the unaudited phases (default $PIPM_STORE; audited runs always execute)")
	)
	flag.Parse()

	// Fail fast on an unwritable report path: the validation pass can take
	// minutes, and its verdict must not be lost to a typo discovered at the
	// end.
	if *jsonPath != "" {
		if err := store.ProbeFile(*jsonPath); err != nil {
			fatal(err)
		}
	}

	o := validate.Options{Harness: harness.DefaultOptions(), Seeds: *seeds}
	if *quick {
		o = validate.Quick()
		o.Seeds = *seeds
	}
	if *records > 0 {
		o.Harness.RecordsPerCore = *records
	}
	o.Harness.Workers = *parallel
	if *progress {
		o.Harness.Progress = os.Stderr
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		o.Harness.Store = st
	}

	mode, err := audit.ParseMode(*auditMode)
	if err != nil {
		fatal(err)
	}
	o.Audit = audit.Options{Mode: mode, Interval: *auditEvery}.WithDefaults()
	if mode == audit.Off {
		o.Audit = audit.Options{}
	}

	if *workloads != "" {
		var wls []workload.Params
		for _, name := range strings.Split(*workloads, ",") {
			p, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			wls = append(wls, p)
		}
		o.Harness.Workloads = wls
	}
	if *schemes != "" {
		for _, name := range strings.Split(*schemes, ",") {
			sc, err := migration.ByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			o.Schemes = append(o.Schemes, sc.Kind)
		}
	}

	rep, err := validate.Run(o)
	if err != nil {
		fatal(err)
	}
	rep.Render(os.Stdout)

	if *jsonPath != "" {
		if err := store.WriteToAtomic(*jsonPath, rep.WriteJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[validate] wrote %s\n", *jsonPath)
	}

	if err := rep.Err(); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "[validate] all phases clean")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "validate:", err)
	os.Exit(1)
}
