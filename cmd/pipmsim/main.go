// Command pipmsim runs one multi-host CXL-DSM simulation: a workload from
// the Table 1 catalog under one page-placement scheme, printing the metrics
// the paper's figures report.
//
// Usage:
//
//	pipmsim -workload pr -scheme pipm -records 400000
//	pipmsim -workload ycsb -scheme native -hosts 4 -cores 2 -shared 16
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"
	"time"

	"pipm"
	"pipm/internal/stats"
	"pipm/internal/telemetry"
	"pipm/internal/trace"
)

func main() {
	var (
		wlName   = flag.String("workload", "pr", "workload name ("+strings.Join(pipm.WorkloadNames(), ", ")+")")
		scheme   = flag.String("scheme", "pipm", "placement scheme ("+strings.Join(pipm.SchemeNames(), ", ")+")")
		records  = flag.Int64("records", 400_000, "trace records per core")
		seed     = flag.Int64("seed", 1, "workload generator seed")
		hosts    = flag.Int("hosts", 0, "override host count (0 = config default)")
		cores    = flag.Int("cores", 0, "override cores per host (0 = config default)")
		shared   = flag.Int64("shared", 0, "override shared heap size in MiB (0 = config default)")
		compare  = flag.Bool("compare", false, "also run the native baseline and report speedup")
		intraPar = flag.Int("intra-parallel", 0, "prepare workers for intra-run parallel simulation (PDES; 0 = sequential engine, results identical)")
		tracedir = flag.String("tracedir", "", "replay binary traces (h<h>c<c>.trc, from tracegen -outdir) instead of generating")

		tsPath    = flag.String("timeseries", "", "write the run's interval time-series to this file (JSON, or CSV if the path ends in .csv)")
		trPath    = flag.String("trace", "", "write the run's protocol event trace to this file (Chrome trace-event JSON, loadable in ui.perfetto.dev)")
		sampleInt = flag.Duration("sample-interval", 10*time.Microsecond, "time-series sampling interval in simulated time (with -timeseries)")
		storeDir  = flag.String("store", os.Getenv("PIPM_STORE"), "persistent result store directory: a previously simulated identical run is loaded instead of re-simulated (default $PIPM_STORE; ignored with -tracedir)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")

		listSchemes   = flag.Bool("list-schemes", false, "list registered placement schemes and exit")
		listWorkloads = flag.Bool("list-workloads", false, "list every registered workload (Table 1 catalog + production services) and exit")
	)
	flag.Parse()

	if *listSchemes {
		printSchemes(os.Stdout)
		return
	}
	if *listWorkloads {
		printWorkloads(os.Stdout)
		return
	}

	// Bind the pprof listener before the run starts: a bad -pprof address
	// must fail immediately, not vanish into a goroutine's log line.
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(fmt.Errorf("pprof: %w", err))
		}
		go func() {
			fmt.Fprintln(os.Stderr, "pipmsim: pprof:", http.Serve(ln, nil))
		}()
	}

	// Fail fast on unwritable export paths — before the simulation, not
	// after it.
	for _, path := range []string{*tsPath, *trPath} {
		if path != "" {
			if err := pipm.ProbeOutputFile(path); err != nil {
				fatal(err)
			}
		}
	}

	wl, err := pipm.WorkloadByName(*wlName)
	if err != nil {
		fatal(err)
	}
	k, err := pipm.ParseScheme(*scheme)
	if err != nil {
		fatal(err)
	}
	cfg := pipm.ScaledConfig()
	if *hosts > 0 {
		// ScaleForHosts also widens the directory slice count with the
		// cluster, matching the harness's clusterscale configs.
		cfg = pipm.ScaleForHosts(cfg, *hosts)
	}
	if *cores > 0 {
		cfg.CoresPerHost = *cores
	}
	if *shared > 0 {
		cfg.SharedBytes = *shared << 20
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	var topt pipm.TelemetryOptions
	if *tsPath != "" {
		if *sampleInt <= 0 {
			fatal(fmt.Errorf("-sample-interval must be positive, got %v", *sampleInt))
		}
		topt.SampleInterval = pipm.Time(sampleInt.Nanoseconds()) * pipm.Nanosecond
	}
	if *trPath != "" {
		topt.Trace = true
	}

	var res pipm.Result
	var tout *pipm.TelemetryOutput
	var err2 error
	switch {
	case *tracedir != "":
		// Replayed traces have no canonical run key (the trace files are not
		// part of any hashable recipe), so the store never applies here.
		res, tout, err2 = runFromTraces(cfg, k, *tracedir, topt, *intraPar)
	case *storeDir != "":
		// Route through the store-backed runner: an identical earlier run —
		// from this tool or a whole experiments sweep — answers from disk.
		var st *pipm.ResultStore
		if st, err2 = pipm.OpenStore(*storeDir); err2 == nil {
			runner := pipm.NewRunner(pipm.SuiteOptions{Store: st})
			req := pipm.RunRequest{Cfg: cfg, WL: wl, Scheme: k, Records: *records, Seed: *seed,
				Telemetry: topt, Intra: pipm.IntraOptions{Workers: *intraPar}}
			res, err2 = runner.Get(req)
			tout = runner.Telemetry(req)
			if stats, ok := runner.StoreStats(); ok && err2 == nil {
				if stats.Hits > 0 {
					fmt.Fprintf(os.Stderr, "[store hit: loaded from %s]\n", stats.Dir)
				}
			}
		}
	default:
		res, tout, err2 = pipm.RunWithOptions(cfg, wl, k, *records, *seed,
			pipm.RunOptions{Telemetry: topt, Intra: pipm.IntraOptions{Workers: *intraPar}})
	}
	if err2 != nil {
		fatal(err2)
	}
	if err := exportTelemetry(tout, wl.Name, k, *tsPath, *trPath); err != nil {
		fatal(err)
	}
	fmt.Printf("workload        %s (%s)\n", wl.Name, wl.Suite)
	fmt.Printf("scheme          %v\n", k)
	fmt.Printf("exec time       %v\n", res.ExecTime)
	fmt.Printf("IPC             %.3f\n", res.IPC)
	fmt.Printf("local hit rate  %.1f%%\n", 100*res.LocalHitRate)
	fmt.Printf("inter-host stall %.2f%% of core time\n", 100*res.InterStallFrac)
	fmt.Printf("mgmt stall      %.2f%%   transfer stall %.2f%%\n", 100*res.MgmtStallFrac, 100*res.TransferFrac)
	fmt.Printf("promotions      %d   demotions %d   lines moved %d\n", res.Promotions, res.Demotions, res.LinesMoved)
	fmt.Printf("footprint       %.1f%% pages, %.1f%% lines (per host avg)\n",
		100*res.PageFootprintFrac, 100*res.LineFootprintFrac)
	if res.HarmfulFrac > 0 {
		fmt.Printf("harmful migs    %.1f%%\n", 100*res.HarmfulFrac)
	}
	if res.LocalRemapHitRate > 0 || res.GlobalRemapHitRate > 0 {
		fmt.Printf("remap caches    local %.1f%%, global %.1f%% hit\n",
			100*res.LocalRemapHitRate, 100*res.GlobalRemapHitRate)
	}

	if *compare && k != pipm.Native {
		nat, err := pipm.Run(cfg, wl, pipm.Native, *records, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("speedup         %.2fx over native (%v)\n", pipm.Speedup(res, nat), nat.ExecTime)
	}
}

// exportTelemetry writes whichever telemetry files were requested. tout is
// nil when telemetry was disabled.
func exportTelemetry(tout *pipm.TelemetryOutput, wl string, k pipm.Scheme, tsPath, trPath string) error {
	if tout == nil {
		return nil
	}
	runs := []telemetry.LabeledOutput{{Label: wl + "/" + k.String(), Output: tout}}
	if tsPath != "" {
		write := func(w io.Writer) error { return telemetry.WriteTimeSeries(w, runs) }
		if strings.HasSuffix(tsPath, ".csv") {
			write = func(w io.Writer) error { return telemetry.WriteTimeSeriesCSV(w, runs) }
		}
		if err := writeTo(tsPath, write); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[time-series written to %s]\n", tsPath)
	}
	if trPath != "" {
		if err := writeTo(trPath, func(w io.Writer) error { return telemetry.WriteChromeTrace(w, runs) }); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[trace written to %s]\n", trPath)
	}
	return nil
}

// writeTo streams one export into path atomically (temp file + rename), so
// a failed export never clobbers a previous good file.
func writeTo(path string, write func(io.Writer) error) error {
	return pipm.WriteToAtomic(path, write)
}

// runFromTraces replays tracegen -outdir output through the machine.
func runFromTraces(cfg pipm.Config, k pipm.Scheme, dir string, topt pipm.TelemetryOptions, intraWorkers int) (pipm.Result, *pipm.TelemetryOutput, error) {
	m, err := pipm.NewMachine(cfg, k)
	if err != nil {
		return pipm.Result{}, nil, err
	}
	if err := m.EnableTelemetry(topt); err != nil {
		return pipm.Result{}, nil, err
	}
	if err := m.EnableIntraParallel(pipm.IntraOptions{Workers: intraWorkers}); err != nil {
		return pipm.Result{}, nil, err
	}
	var files []*os.File
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for h := 0; h < cfg.Hosts; h++ {
		for c := 0; c < cfg.CoresPerHost; c++ {
			name := filepath.Join(dir, fmt.Sprintf("h%dc%d.trc", h, c))
			f, err := os.Open(name)
			if err != nil {
				return pipm.Result{}, nil, err
			}
			files = append(files, f)
			r, err := trace.NewBinaryReader(f)
			if err != nil {
				return pipm.Result{}, nil, fmt.Errorf("%s: %w", name, err)
			}
			m.SetTrace(h, c, r)
		}
	}
	if err := m.Run(); err != nil {
		return pipm.Result{}, nil, err
	}
	col := m.Stats()
	return pipm.Result{
		Scheme:         k,
		ExecTime:       m.ExecTime(),
		IPC:            m.IPC(),
		LocalHitRate:   col.LocalHitRate(),
		InterStallFrac: col.StallFraction(stats.ClassInterHost),
		MgmtStallFrac:  col.MgmtFraction(),
		TransferFrac:   col.TransferFraction(),
		HarmfulFrac:    m.HarmfulFraction(),
		Promotions:     col.Promotions,
		Demotions:      col.Demotions,
		LinesMoved:     col.LinesMoved,
		BytesMoved:     col.BytesMoved,
	}, m.TelemetryOutput(), nil
}

// printSchemes lists the scheme registry (the same source -scheme parses).
func printSchemes(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tFAMILY\tDESCRIPTION")
	for _, s := range pipm.RegisteredSchemes() {
		fmt.Fprintf(tw, "%s\t%v\t%s\n", s.Name, s.Family, s.Desc)
	}
	tw.Flush()
}

// printWorkloads lists every workload the -workload flag accepts: the
// Table 1 statistical catalog plus the mechanistic production-service
// generators, whose mix comes from their serving/filesystem loop rather
// than SharedFrac/WriteFrac knobs.
func printWorkloads(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tSUITE\tFOOTPRINT\tSHARED%\tWRITE%")
	for _, wl := range pipm.AllWorkloads() {
		if wl.Mechanistic() {
			fmt.Fprintf(tw, "%s\t%s\t%dMB\tmechanistic\t-\n",
				wl.Name, wl.Suite, wl.Footprint>>20)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%dMB\t%.0f%%\t%.0f%%\n",
			wl.Name, wl.Suite, wl.Footprint>>20, 100*wl.SharedFrac, 100*wl.WriteFrac)
	}
	tw.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipmsim:", err)
	os.Exit(1)
}
