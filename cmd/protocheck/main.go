// Command protocheck model-checks the PIPM coherence protocol, reproducing
// the paper's Murφ verification (§5.1.4): exhaustive state-space
// exploration proving the Single-Writer-Multiple-Reader invariant,
// per-location sequential consistency, and deadlock freedom.
//
// Usage:
//
//	protocheck              # base MSI and MSI+PIPM, 2 and 3 hosts
//	protocheck -hosts 3 -protocol pipm
package main

import (
	"flag"
	"fmt"
	"os"

	"pipm"
)

func main() {
	var (
		hosts    = flag.Int("hosts", 0, "host count (2 or 3; 0 = both)")
		protocol = flag.String("protocol", "both", "protocol variant: msi, pipm, both")
	)
	flag.Parse()

	hostSet := []int{2, 3}
	if *hosts != 0 {
		hostSet = []int{*hosts}
	}
	var variants []bool
	switch *protocol {
	case "msi":
		variants = []bool{false}
	case "pipm":
		variants = []bool{true}
	case "both":
		variants = []bool{false, true}
	default:
		fmt.Fprintf(os.Stderr, "protocheck: unknown protocol %q\n", *protocol)
		os.Exit(2)
	}

	failed := false
	for _, h := range hostSet {
		for _, ext := range variants {
			name := "MSI"
			if ext {
				name = "MSI+PIPM"
			}
			res, v := pipm.VerifyCoherence(h, ext)
			if v != nil {
				failed = true
				fmt.Printf("%-9s %d hosts: VIOLATION %v\n", name, h, v)
				continue
			}
			fmt.Printf("%-9s %d hosts: %6d states %7d transitions  SWMR ok, SC-per-location ok, deadlock-free\n",
				name, h, res.States, res.Transitions)
		}
	}
	if failed {
		os.Exit(1)
	}
}
