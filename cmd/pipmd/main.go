// Command pipmd is the experiment service daemon: an HTTP server over one
// shared harness run engine and (optionally) a persistent result store
// (DESIGN.md §15).
//
//	pipmd -addr localhost:8080 -store /var/lib/pipm/store
//
// Clients submit sweep specs with POST /v1/sweeps (or `pipmctl submit`),
// watch progress over Server-Sent Events, and fetch artefacts straight from
// the store. Identical concurrent submissions share one execution per run
// key; anything the store already holds is never simulated again. SIGTERM or
// SIGINT drains: new sweeps are rejected, live jobs finish (up to -drain,
// then they are cancelled), and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pipm/internal/service"
	"pipm/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:8080", "listen address")
		storeDir  = flag.String("store", os.Getenv("PIPM_STORE"), "persistent result store directory (default $PIPM_STORE; empty runs without a store)")
		parallel  = flag.Int("parallel", 0, "concurrent simulations on the shared engine (0 = GOMAXPROCS)")
		maxActive = flag.Int("max-active-jobs", 2, "jobs executing at once; accepted jobs beyond this wait queued")
		maxJobs   = flag.Int("max-jobs", 1024, "job-table cap: past it the least-recently-accessed finished jobs are evicted (their results stay reachable via /v1/runs/{key})")
		maxRuns   = flag.Int("max-runs", 4096, "reject sweeps expanding past this many runs")
		reqTO     = flag.Duration("request-timeout", 30*time.Second, "per-request timeout (event streams are exempt)")
		drainTO   = flag.Duration("drain", 10*time.Minute, "max time to wait for live jobs on shutdown before cancelling them")
		gcAge     = flag.Duration("gc-age", 0, "collect store entries older than this (0 disables the GC task)")
		gcEvery   = flag.Duration("gc-interval", time.Hour, "how often the GC task runs (with -gc-age)")
		verbose   = flag.Bool("verbose", false, "log per-run engine progress")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("pipmd: ")
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}

	cfg := service.Config{
		Workers:         *parallel,
		MaxActiveJobs:   *maxActive,
		MaxJobs:         *maxJobs,
		MaxRunsPerSweep: *maxRuns,
		RequestTimeout:  *reqTO,
		Logf:            log.Printf,
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatalf("open store: %v", err)
		}
		cfg.Store = st
		log.Printf("result store: %s", st.Dir())
	} else {
		log.Printf("no result store (-store / $PIPM_STORE unset); results live only in the memo")
	}

	svc := service.New(cfg)
	stopGC := svc.StartGC(*gcEvery, *gcAge)
	defer stopGC()
	if *gcAge > 0 && cfg.Store != nil {
		log.Printf("store GC: every %v, max age %v", *gcEvery, *gcAge)
	}

	// Bind before announcing, so a bad -addr fails fast with a real error
	// instead of surfacing as connection refusals on the client side.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("serving on http://%s", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("%s: draining (max %v)", s, *drainTO)
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		log.Printf("drain: %v (live jobs were cancelled)", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		// Lingering event-stream clients keep connections open past the
		// deadline; close them hard rather than hanging the exit.
		srv.Close()
	}
	fmt.Fprintln(os.Stderr, "pipmd: drained, exiting")
}
