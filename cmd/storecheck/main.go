// Command storecheck inspects a persistent result store (DESIGN.md §14):
// lists its entries, deep-verifies every one (container header + checksum,
// then the content layer's Result digest), and garbage-collects old entries
// and stale temp files.
//
// Usage:
//
//	storecheck -store RESULTS            # list entries
//	storecheck -store RESULTS -verify    # verify every entry; exit 1 on any corrupt
//	storecheck -store RESULTS -gc 720h   # drop entries older than 30 days
//
// -store defaults to $PIPM_STORE, like the simulation CLIs.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"pipm"
)

func main() {
	var (
		storeDir = flag.String("store", os.Getenv("PIPM_STORE"), "result store directory (default $PIPM_STORE)")
		verify   = flag.Bool("verify", false, "deep-verify every entry (header, checksum, Result digest); exit 1 if any fails")
		gcAge    = flag.Duration("gc", 0, "remove entries older than this age (e.g. 720h), plus stale temp files")
		quiet    = flag.Bool("q", false, "suppress the per-entry listing; print only the summary")
	)
	flag.Parse()

	if *storeDir == "" {
		fatal(fmt.Errorf("no store directory: pass -store or set $PIPM_STORE"))
	}
	st, err := pipm.OpenStore(*storeDir)
	if err != nil {
		fatal(err)
	}

	if *gcAge > 0 {
		removed, err := st.GC(*gcAge, time.Now())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("gc: removed %d entries older than %v\n", removed, *gcAge)
	}

	entries, err := st.Entries()
	if err != nil {
		fatal(err)
	}

	var totalBytes int64
	corrupt := 0
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if !*quiet {
		if *verify {
			fmt.Fprintln(tw, "KEY\tSIZE\tMODIFIED\tSTATUS")
		} else {
			fmt.Fprintln(tw, "KEY\tSIZE\tMODIFIED")
		}
	}
	for _, e := range entries {
		totalBytes += e.Size
		status := ""
		if *verify {
			status = verifyEntry(st, e.Key)
			if status != "ok" {
				corrupt++
			}
		}
		if *quiet {
			continue
		}
		if *verify {
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", e.Key, e.Size, e.ModTime.Format(time.RFC3339), status)
		} else {
			fmt.Fprintf(tw, "%s\t%d\t%s\n", e.Key, e.Size, e.ModTime.Format(time.RFC3339))
		}
	}
	tw.Flush()

	fmt.Printf("%s: %d entries, %d bytes", *storeDir, len(entries), totalBytes)
	if *verify {
		fmt.Printf(", %d corrupt", corrupt)
	}
	fmt.Println()
	if corrupt > 0 {
		os.Exit(1)
	}
}

// verifyEntry deep-verifies one entry: the container load re-checks the
// header and body checksum; DecodeStoredResult then re-digests the decoded
// Result, catching codec-level drift the checksum cannot.
func verifyEntry(st *pipm.ResultStore, key string) string {
	body, err := st.Load(key)
	if err != nil {
		return err.Error()
	}
	if _, _, err := pipm.DecodeStoredResult(body); err != nil {
		return err.Error()
	}
	return "ok"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "storecheck:", err)
	os.Exit(1)
}
