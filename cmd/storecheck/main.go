// Command storecheck inspects a persistent result store (DESIGN.md §14):
// lists its entries, deep-verifies every one (container header + checksum,
// then the content layer's Result digest), garbage-collects old entries and
// stale temp files, and dumps single verified entries.
//
// Usage:
//
//	storecheck -store RESULTS            # list entries
//	storecheck -store RESULTS -verify    # verify every entry; exit 1 on any corrupt
//	storecheck -store RESULTS -gc 720h   # drop entries older than 30 days
//	storecheck -store RESULTS -json      # machine-readable report (pipm-storecheck/v1)
//	storecheck -store RESULTS -cat KEY   # verified entry body to stdout
//
// -store defaults to $PIPM_STORE, like the simulation CLIs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"pipm"
)

// jsonSchema versions the -json report layout.
const jsonSchema = "pipm-storecheck/v1"

// report is the -json document. Field order is fixed for deterministic
// output; Entries is omitted with -q.
type report struct {
	Schema     string      `json:"schema"`
	Dir        string      `json:"dir"`
	Count      int         `json:"count"`
	TotalBytes int64       `json:"total_bytes"`
	Verified   bool        `json:"verified"`
	Corrupt    int         `json:"corrupt"`
	GC         *gcReport   `json:"gc,omitempty"`
	Entries    []entryInfo `json:"entries,omitempty"`
}

type gcReport struct {
	MaxAge  string `json:"max_age"`
	Removed int    `json:"removed"`
}

type entryInfo struct {
	Key      string `json:"key"`
	Size     int64  `json:"size"`
	Modified string `json:"modified"`
	// Status is "ok" or the verification error; empty without -verify.
	Status string `json:"status,omitempty"`
}

func main() {
	var (
		storeDir = flag.String("store", os.Getenv("PIPM_STORE"), "result store directory (default $PIPM_STORE)")
		verify   = flag.Bool("verify", false, "deep-verify every entry (header, checksum, Result digest); exit 1 if any fails")
		gcAge    = flag.Duration("gc", 0, "remove entries older than this age (e.g. 720h), plus stale temp files")
		jsonOut  = flag.Bool("json", false, "emit the machine-readable "+jsonSchema+" report instead of text")
		catKey   = flag.String("cat", "", "write this entry's verified body to stdout and exit")
		quiet    = flag.Bool("q", false, "suppress the per-entry listing; print only the summary")
	)
	flag.Parse()

	if *storeDir == "" {
		fatal(fmt.Errorf("no store directory: pass -store or set $PIPM_STORE"))
	}
	st, err := pipm.OpenStore(*storeDir)
	if err != nil {
		fatal(err)
	}

	if *catKey != "" {
		if err := cat(st, *catKey); err != nil {
			fatal(err)
		}
		return
	}

	rep := report{Schema: jsonSchema, Dir: *storeDir, Verified: *verify}
	if *gcAge > 0 {
		removed, err := st.GC(*gcAge, time.Now())
		if err != nil {
			fatal(err)
		}
		rep.GC = &gcReport{MaxAge: gcAge.String(), Removed: removed}
	}

	entries, err := st.Entries()
	if err != nil {
		fatal(err)
	}
	rep.Count = len(entries)
	for _, e := range entries {
		rep.TotalBytes += e.Size
		info := entryInfo{Key: e.Key, Size: e.Size, Modified: e.ModTime.Format(time.RFC3339)}
		if *verify {
			info.Status = verifyEntry(st, e.Key)
			if info.Status != "ok" {
				rep.Corrupt++
			}
		}
		if !*quiet {
			rep.Entries = append(rep.Entries, info)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		printText(rep, *verify, *quiet)
	}
	if rep.Corrupt > 0 {
		os.Exit(1)
	}
}

// cat writes one entry's body to stdout after full verification, so piping
// it onward can never propagate a corrupt artefact. The bytes are exactly
// the stored content layer — byte-identical to what the daemon's
// GET /v1/runs/{key} serves.
func cat(st *pipm.ResultStore, key string) error {
	body, err := st.Load(key)
	if err != nil {
		return err
	}
	if _, _, err := pipm.DecodeStoredResult(body); err != nil {
		return fmt.Errorf("%.12s…: %w", key, err)
	}
	_, err = os.Stdout.Write(body)
	return err
}

func printText(rep report, verify, quiet bool) {
	if rep.GC != nil {
		fmt.Printf("gc: removed %d entries older than %s\n", rep.GC.Removed, rep.GC.MaxAge)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if !quiet {
		if verify {
			fmt.Fprintln(tw, "KEY\tSIZE\tMODIFIED\tSTATUS")
		} else {
			fmt.Fprintln(tw, "KEY\tSIZE\tMODIFIED")
		}
		for _, e := range rep.Entries {
			if verify {
				fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", e.Key, e.Size, e.Modified, e.Status)
			} else {
				fmt.Fprintf(tw, "%s\t%d\t%s\n", e.Key, e.Size, e.Modified)
			}
		}
	}
	tw.Flush()
	fmt.Printf("%s: %d entries, %d bytes", rep.Dir, rep.Count, rep.TotalBytes)
	if verify {
		fmt.Printf(", %d corrupt", rep.Corrupt)
	}
	fmt.Println()
}

// verifyEntry deep-verifies one entry: the container load re-checks the
// header and body checksum; DecodeStoredResult then re-digests the decoded
// Result, catching codec-level drift the checksum cannot.
func verifyEntry(st *pipm.ResultStore, key string) string {
	body, err := st.Load(key)
	if err != nil {
		return err.Error()
	}
	if _, _, err := pipm.DecodeStoredResult(body); err != nil {
		return err.Error()
	}
	return "ok"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "storecheck:", err)
	os.Exit(1)
}
