// Command conformance drives the differential-conformance subsystem: the
// sharded parallel model checker over generalized protocol instances the
// sequential checker cannot express (up to 4 hosts and 2 coupled lines),
// and the randomized adversarial trace fuzzer that cross-checks full
// machine runs against the sequentially consistent golden memory model.
//
// Usage:
//
//	conformance -hosts 4                     # parallel model check, 4 hosts, 2 lines
//	conformance -hosts 4 -lines 1 -workers 8 # explicit instance and worker count
//	conformance -fuzz 200 -seed 7 -shrink    # 200-trace-set fuzz campaign
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pipm/internal/check"
	"pipm/internal/conformance"
)

func main() {
	var (
		hosts    = flag.Int("hosts", 4, "model check: host count (2..4)")
		lines    = flag.Int("lines", 2, "model check: cache lines of the shared page (1..2)")
		protocol = flag.String("protocol", "both", "model check: msi, pipm, or both")
		workers  = flag.Int("workers", 0, "model check: worker shards (0 = GOMAXPROCS)")
		fuzzSets = flag.Int("fuzz", 0, "fuzz mode: run this many adversarial trace sets instead")
		seed     = flag.Int64("seed", 1, "fuzz mode: campaign base seed")
		records  = flag.Int("records", 0, "fuzz mode: records per core (0 = default)")
		shrink   = flag.Bool("shrink", false, "fuzz mode: minimize failing trace sets")
	)
	flag.Parse()

	if *fuzzSets > 0 {
		os.Exit(runFuzz(*fuzzSets, *seed, *records, *shrink))
	}
	os.Exit(runCheck(*hosts, *lines, *protocol, *workers))
}

func runCheck(hosts, lines int, protocol string, workers int) int {
	var variants []bool
	switch protocol {
	case "msi":
		variants = []bool{false}
	case "pipm":
		variants = []bool{true}
	case "both":
		variants = []bool{false, true}
	default:
		fmt.Fprintf(os.Stderr, "conformance: unknown protocol %q\n", protocol)
		return 2
	}
	if hosts < 2 || hosts > check.MaxHosts || lines < 1 || lines > check.MaxLines {
		fmt.Fprintf(os.Stderr, "conformance: instance out of range (hosts 2..%d, lines 1..%d)\n",
			check.MaxHosts, check.MaxLines)
		return 2
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	failed := false
	for _, ext := range variants {
		name := "MSI"
		if ext {
			name = "MSI+PIPM"
		}
		start := time.Now()
		res, v := check.PRun(check.POptions{Hosts: hosts, Lines: lines, PIPM: ext, Workers: workers})
		elapsed := time.Since(start)
		if v != nil {
			failed = true
			fmt.Printf("%-9s %d hosts %d lines: VIOLATION %s\n", name, hosts, lines, v.Rule)
			for i, ev := range v.Path {
				fmt.Printf("  %3d. %v\n", i+1, ev)
			}
			continue
		}
		fmt.Printf("%-9s %d hosts %d lines: %7d states %9d transitions  depth %2d  %d workers  %v\n",
			name, hosts, lines, res.States, res.Transitions, res.Depth, res.Workers,
			elapsed.Round(time.Millisecond))
	}
	if failed {
		return 1
	}
	fmt.Println("SWMR ok, SC-per-location ok, deadlock-free")
	return 0
}

func runFuzz(sets int, seed int64, records int, shrink bool) int {
	start := time.Now()
	runs, failures, err := conformance.Fuzz(conformance.FuzzOptions{
		Seed:    seed,
		Sets:    sets,
		Records: records,
		Shrink:  shrink,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "conformance: %v\n", err)
		return 2
	}
	fmt.Printf("fuzz: %d trace sets, %d machine runs, %d failure(s) in %v\n",
		sets, runs, len(failures), time.Since(start).Round(time.Millisecond))
	for _, f := range failures {
		fmt.Printf("FAIL seed=%d kind=%s scheme=%s records=%d\n", f.Seed, f.Kind, f.Scheme, f.Records)
		for _, v := range f.Violations {
			fmt.Printf("  %s\n", v)
		}
	}
	if len(failures) > 0 {
		return 1
	}
	return 0
}
