// Command pipmctl is the pipmd client: submit sweeps, watch their progress,
// and fetch stored artefacts over the daemon's HTTP API (DESIGN.md §15).
//
//	pipmctl submit -quick -workloads pr,canneal -schemes all -records 6000
//	pipmctl watch -id <job>
//	pipmctl status -id <job> -keys
//	pipmctl fetch -key <run-key> > result.json
//
// The daemon address comes from -addr or $PIPMD_ADDR (default
// http://localhost:8080).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"pipm/internal/service"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: pipmctl <command> [flags]

commands:
  submit     submit a sweep; prints the job ID (add -wait to stream it too)
  status     list jobs, or report one job with -id
  watch      stream a job's events until it finishes (exit 1 unless done)
  fetch      print a stored run artefact by key (-timeseries/-trace variants)
  schemes    list the daemon's registered placement schemes
  workloads  list the daemon's workload catalog

run 'pipmctl <command> -h' for the command's flags
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "watch":
		err = cmdWatch(os.Args[2:])
	case "fetch":
		err = cmdFetch(os.Args[2:])
	case "schemes":
		err = cmdList(os.Args[2:], "/v1/schemes")
	case "workloads":
		err = cmdList(os.Args[2:], "/v1/workloads")
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pipmctl: unknown command %q\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipmctl:", err)
		os.Exit(1)
	}
}

// addrFlag installs the shared -addr flag on a subcommand's flag set.
func addrFlag(fs *flag.FlagSet) *string {
	def := os.Getenv("PIPMD_ADDR")
	if def == "" {
		def = "http://localhost:8080"
	}
	return fs.String("addr", def, "pipmd base URL (default $PIPMD_ADDR)")
}

// api wraps one error-mapped request: non-2xx responses decode the uniform
// {"error": ...} body into a Go error.
func api(method, url string, body io.Reader) (*http.Response, error) {
	return apiCtx(context.Background(), method, url, body)
}

func apiCtx(ctx context.Context, method, url string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var ae struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &ae) == nil && ae.Error != "" {
			return nil, fmt.Errorf("%s: %s", resp.Status, ae.Error)
		}
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	return resp, nil
}

func getJSON(url string, v any) error {
	resp, err := api(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("pipmctl submit", flag.ExitOnError)
	addr := addrFlag(fs)
	var (
		specFile  = fs.String("f", "", "read the sweep spec from this JSON file ('-' for stdin); flags below override its fields")
		workloads = fs.String("workloads", "", "comma-separated workload names (empty = base default)")
		schemes   = fs.String("schemes", "", "comma-separated scheme names, or 'all' (empty = all)")
		records   = fs.Int64("records", 0, "per-core record budget (0 = base default)")
		seed      = fs.Int64("seed", 0, "workload seed (0 = base default)")
		quick     = fs.Bool("quick", false, "quick-scale base configuration")
		sample    = fs.String("timeseries", "", "sample interval enabling the per-run time-series (e.g. 10us)")
		trace     = fs.Bool("trace", false, "collect the protocol event trace")
		auditMode = fs.String("audit", "", "invariant auditor mode: off, quantum, paranoid")
		wait      = fs.Bool("wait", false, "stream the job's events after submitting (like 'watch')")
	)
	fs.Parse(args)

	var spec service.SweepSpec
	if *specFile != "" {
		var raw []byte
		var err error
		if *specFile == "-" {
			raw, err = io.ReadAll(os.Stdin)
		} else {
			raw, err = os.ReadFile(*specFile)
		}
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &spec); err != nil {
			return fmt.Errorf("%s: %w", *specFile, err)
		}
	}
	if *workloads != "" {
		spec.Workloads = strings.Split(*workloads, ",")
	}
	if *schemes != "" {
		spec.Schemes = strings.Split(*schemes, ",")
	}
	if *records > 0 {
		spec.Records = *records
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	if *quick {
		spec.Quick = true
	}
	if *sample != "" {
		spec.SampleInterval = *sample
	}
	if *trace {
		spec.Trace = true
	}
	if *auditMode != "" {
		spec.Audit = *auditMode
	}

	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := api(http.MethodPost, *addr+"/v1/sweeps", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var sub service.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return err
	}
	note := "submitted"
	if sub.Deduped {
		note = "deduped onto existing job"
	}
	fmt.Fprintf(os.Stderr, "pipmctl: %s: %d runs, state %s\n", note, sub.Total, sub.State)
	fmt.Println(sub.ID)
	if *wait {
		return watch(*addr, sub.ID)
	}
	return nil
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("pipmctl status", flag.ExitOnError)
	addr := addrFlag(fs)
	var (
		id       = fs.String("id", "", "job ID (empty lists every job)")
		jsonOut  = fs.Bool("json", false, "print the raw JSON status")
		keysOnly = fs.Bool("keys", false, "print only the job's run keys, one per line")
	)
	fs.Parse(args)

	if *id == "" {
		var jobs []service.JobStatus
		if err := getJSON(*addr+"/v1/sweeps", &jobs); err != nil {
			return err
		}
		if *jsonOut {
			return printJSON(jobs)
		}
		for _, j := range jobs {
			fmt.Printf("%s  %-9s  %d/%d done", j.ID, j.State, j.Done, j.Total)
			if j.Failed > 0 {
				fmt.Printf("  %d failed", j.Failed)
			}
			fmt.Println()
		}
		return nil
	}

	var j service.JobStatus
	if err := getJSON(*addr+"/v1/sweeps/"+*id, &j); err != nil {
		return err
	}
	if *keysOnly {
		for _, r := range j.Runs {
			fmt.Println(r.Key)
		}
		return nil
	}
	if *jsonOut {
		return printJSON(j)
	}
	fmt.Printf("job %s: %s, %d/%d done", j.ID, j.State, j.Done, j.Total)
	if j.Failed > 0 {
		fmt.Printf(", %d failed", j.Failed)
	}
	if j.Error != "" {
		fmt.Printf(" (%s)", j.Error)
	}
	fmt.Println()
	for _, r := range j.Runs {
		fmt.Printf("  %-9s  %-10s %-10s %s\n", r.State, r.Workload, r.Scheme, r.Key)
	}
	return nil
}

func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("pipmctl watch", flag.ExitOnError)
	addr := addrFlag(fs)
	id := fs.String("id", "", "job ID (required)")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("watch: -id is required")
	}
	return watch(*addr, *id)
}

// watch consumes a job's SSE stream until its terminal event, echoing one
// line per event. Exit error unless the job finished done.
func watch(addr, id string) error {
	resp, err := api(http.MethodGet, addr+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return fmt.Errorf("bad event %q: %w", line, err)
		}
		switch ev.Type {
		case "run":
			detail := ""
			if ev.Stats != nil {
				detail = fmt.Sprintf("  %.0f ms", ev.Stats.WallMS)
				if ev.Stats.StoreHit {
					detail += " (store)"
				}
			}
			if ev.Error != "" {
				detail += "  " + ev.Error
			}
			fmt.Printf("[%d/%d] %-9s %-10s %-10s%s\n",
				ev.Done, ev.Total, ev.State, ev.Workload, ev.Scheme, detail)
		case "job":
			fmt.Printf("job %s: %s (%d/%d done)\n", ev.Job, ev.State, ev.Done, ev.Total)
			if st := service.JobState(ev.State); st.Terminal() {
				if st != service.JobDone {
					return fmt.Errorf("job finished %s", st)
				}
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("event stream: %w", err)
	}
	return fmt.Errorf("event stream ended before the job finished")
}

func cmdFetch(args []string) error {
	fs := flag.NewFlagSet("pipmctl fetch", flag.ExitOnError)
	addr := addrFlag(fs)
	var (
		key     = fs.String("key", "", "canonical run key (required; see 'status -keys')")
		out     = fs.String("o", "", "write to this file instead of stdout")
		ts      = fs.Bool("timeseries", false, "fetch the run's interval time-series instead of the raw entry")
		trace   = fs.Bool("trace", false, "fetch the run's Perfetto trace instead of the raw entry")
		timeout = fs.Duration("timeout", time.Minute, "request timeout")
	)
	fs.Parse(args)
	if *key == "" {
		return fmt.Errorf("fetch: -key is required")
	}
	if *ts && *trace {
		return fmt.Errorf("fetch: -timeseries and -trace are mutually exclusive")
	}
	url := *addr + "/v1/runs/" + *key
	switch {
	case *ts:
		url += "/timeseries"
	case *trace:
		url += "/trace"
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	resp, err := apiCtx(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

func cmdList(args []string, path string) error {
	fs := flag.NewFlagSet("pipmctl "+strings.TrimPrefix(path, "/v1/"), flag.ExitOnError)
	addr := addrFlag(fs)
	jsonOut := fs.Bool("json", false, "print the raw JSON")
	fs.Parse(args)

	var raw json.RawMessage
	if err := getJSON(*addr+path, &raw); err != nil {
		return err
	}
	if *jsonOut {
		fmt.Println(string(raw))
		return nil
	}
	switch path {
	case "/v1/schemes":
		var schemes []service.SchemeInfo
		if err := json.Unmarshal(raw, &schemes); err != nil {
			return err
		}
		for _, s := range schemes {
			fmt.Printf("%-10s %-10s %s\n", s.Name, s.Family, s.Description)
		}
	case "/v1/workloads":
		var wls []service.WorkloadInfo
		if err := json.Unmarshal(raw, &wls); err != nil {
			return err
		}
		for _, w := range wls {
			fmt.Printf("%-12s %-10s %4d MiB  shared %.0f%%  writes %.0f%%\n",
				w.Name, w.Suite, w.FootprintBytes>>20, 100*w.SharedFrac, 100*w.WriteFrac)
		}
	}
	return nil
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
