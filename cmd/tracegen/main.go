// Command tracegen generates a synthetic workload trace for one core and
// either writes it in the binary trace format or prints stream statistics.
// Useful for inspecting what the workload models emit and for feeding the
// simulator externally captured traces.
//
// Usage:
//
//	tracegen -workload ycsb -host 1 -core 0 -records 100000 -out ycsb.trc
//	tracegen -workload pr -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pipm"
	"pipm/internal/config"
	"pipm/internal/trace"
	"pipm/internal/workload"
)

func main() {
	var (
		wlName  = flag.String("workload", "pr", "workload name")
		host    = flag.Int("host", 0, "host the stream belongs to")
		core    = flag.Int("core", 0, "core within the host")
		records = flag.Int64("records", 100_000, "records to generate")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "write binary trace to this file")
		outdir  = flag.String("outdir", "", "write one trace per core (h<h>c<c>.trc) into this directory")
		stats   = flag.Bool("stats", false, "print stream statistics instead of writing")
	)
	flag.Parse()

	wl, err := workload.ByName(*wlName)
	if err != nil {
		fatal(err)
	}
	cfg := pipm.ScaledConfig()
	am := config.NewAddressMap(&cfg)
	r := wl.NewReader(am, cfg.Hosts, *host, *core, *records, *seed)

	switch {
	case *outdir != "":
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fatal(err)
		}
		total := int64(0)
		for h := 0; h < cfg.Hosts; h++ {
			for c := 0; c < cfg.CoresPerHost; c++ {
				name := filepath.Join(*outdir, fmt.Sprintf("h%dc%d.trc", h, c))
				n, err := writeTrace(name, wl.NewReader(am, cfg.Hosts, h, c, *records, *seed))
				if err != nil {
					fatal(err)
				}
				total += n
			}
		}
		fmt.Printf("wrote %d records across %d trace files to %s\n",
			total, cfg.Hosts*cfg.CoresPerHost, *outdir)
	case *stats:
		s := trace.Collect(r, &am)
		fmt.Printf("workload      %s (host %d core %d, seed %d)\n", wl.Name, *host, *core, *seed)
		fmt.Printf("records       %d\n", s.Records)
		fmt.Printf("instructions  %d\n", s.Instructions)
		fmt.Printf("reads/writes  %d / %d (%.1f%% writes)\n", s.Reads, s.Writes,
			100*float64(s.Writes)/float64(s.Records))
		fmt.Printf("shared refs   %d (%.1f%%)\n", s.SharedRefs,
			100*float64(s.SharedRefs)/float64(s.Records))
		fmt.Printf("unique pages  %d\n", s.UniquePages)
		fmt.Printf("unique lines  %d\n", s.UniqueLines)
	case *out != "":
		n, err := writeTrace(*out, r)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d records to %s\n", n, *out)
	default:
		fatal(fmt.Errorf("pass -out FILE, -outdir DIR, or -stats"))
	}
}

// writeTrace drains r into a binary trace file and returns the record count.
func writeTrace(name string, r trace.Reader) (int64, error) {
	f, err := os.Create(name)
	if err != nil {
		return 0, err
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		f.Close()
		return 0, err
	}
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		if err := w.Write(rec); err != nil {
			f.Close()
			return 0, err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return 0, err
	}
	return w.Count(), f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
