// Command experiments regenerates the paper's evaluation artefacts — Tables
// 1–2 and Figures 4–5 and 10–17 — plus the extension artefacts (cluster
// scaling, the production-service workload comparison, threshold and
// adaptivity sweeps), printed as text tables. Every simulation
// flows through the harness's run-graph engine: runs are deduplicated by
// canonical run key (full config + workload params + scheme + records +
// seed), shared across figures, and executed on a bounded worker pool.
// Artefact content on stdout is byte-identical for any -parallel value;
// progress and timing lines go to stderr.
//
// Usage:
//
//	experiments                          # everything (several minutes)
//	experiments -parallel 8              # same output, more worker slots
//	experiments -exp fig10               # one artefact
//	experiments -exp fig10,fig11 -records 100000 -workloads pr,ycsb
//	experiments -quick -json BENCH_quick.json   # record per-run timings
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"pipm"
)

var order = []string{
	"table1", "table2", "fig4", "fig5", "fig10", "fig11", "fig12",
	"fig13", "fig14", "fig15", "fig16", "fig17", "scalability",
	"clusterscale", "serve", "threshold", "adaptivity", "protocheck",
}

// clusterHosts is the parsed -hosts sweep for the clusterscale artefact;
// empty means the default 4/16/64/256 ladder.
var clusterHosts []int

// stderr serialises every diagnostic writer — the engine's progress lines
// (written from worker goroutines while holding the engine lock), the
// artefact timing lines and the export notes — through one mutex, so no two
// sources can interleave mid-line under -parallel.
var stderr = &syncWriter{w: os.Stderr}

type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func main() {
	var (
		exps      = flag.String("exp", "all", "comma-separated artefacts: "+strings.Join(order, ", ")+", or all")
		records   = flag.Int64("records", 0, "override trace records per core")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: full catalog)")
		quick     = flag.Bool("quick", false, "use the small quick configuration")
		parallel  = flag.Int("parallel", 0, "max simulations in flight (0 = GOMAXPROCS)")
		intraPar  = flag.Int("intra-parallel", 0, "prepare workers for intra-run parallel simulation (PDES; 0 = sequential engine, results identical)")
		progress  = flag.Bool("progress", false, "emit per-run progress/ETA lines on stderr")
		jsonPath  = flag.String("json", "", "write per-run timing records (BENCH_*.json) to this file")
		tsPath    = flag.String("timeseries", "", "write per-run interval time-series to this file (JSON, or CSV if the path ends in .csv)")
		trPath    = flag.String("trace", "", "write per-run protocol event traces to this file (Chrome trace-event JSON, loadable in ui.perfetto.dev)")
		sampleInt = flag.Duration("sample-interval", 10*time.Microsecond, "time-series sampling interval in simulated time (with -timeseries)")
		hosts     = flag.String("hosts", "", "comma-separated host counts for the clusterscale artefact (default 4,16,64,256)")
		storeDir  = flag.String("store", os.Getenv("PIPM_STORE"), "persistent result store directory: completed runs are written back and later sweeps load them instead of re-simulating (default $PIPM_STORE)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")

		listSchemes   = flag.Bool("list-schemes", false, "list registered placement schemes and exit")
		listWorkloads = flag.Bool("list-workloads", false, "list the Table 1 workload catalog and exit")
	)
	flag.Parse()

	if *listSchemes {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "NAME\tFAMILY\tDESCRIPTION")
		for _, s := range pipm.RegisteredSchemes() {
			fmt.Fprintf(tw, "%s\t%v\t%s\n", s.Name, s.Family, s.Desc)
		}
		tw.Flush()
		return
	}
	if *listWorkloads {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "NAME\tSUITE\tFOOTPRINT\tSHARED%\tWRITE%")
		for _, wl := range pipm.AllWorkloads() {
			if wl.Mechanistic() {
				// Production-service generators derive their mix from the
				// serving/filesystem loop, not from SharedFrac/WriteFrac.
				fmt.Fprintf(tw, "%s\t%s\t%dMB\tmechanistic\t-\n",
					wl.Name, wl.Suite, wl.Footprint>>20)
				continue
			}
			fmt.Fprintf(tw, "%s\t%s\t%dMB\t%.0f%%\t%.0f%%\n",
				wl.Name, wl.Suite, wl.Footprint>>20, 100*wl.SharedFrac, 100*wl.WriteFrac)
		}
		tw.Flush()
		return
	}

	// Bind the pprof listener before any sweep starts: a bad -pprof address
	// must fail immediately, not vanish into a goroutine's log line after
	// minutes of simulation.
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(fmt.Errorf("pprof: %w", err))
		}
		fmt.Fprintln(stderr, "experiments: pprof on http://"+ln.Addr().String())
		go func() {
			fmt.Fprintln(stderr, "experiments: pprof:", http.Serve(ln, nil))
		}()
	}

	// Reject unknown artefact names before the first simulation runs: a typo
	// in a comma list must fail immediately, not after minutes of sweeps.
	ids, err := selectArtefacts(*exps)
	if err != nil {
		fatal(err)
	}

	// Parse -hosts up front for the same reason: a malformed or out-of-range
	// count must fail before any sweep starts.
	if *hosts != "" {
		for _, f := range strings.Split(*hosts, ",") {
			var h int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &h); err != nil || h < 1 || h > pipm.MaxHosts {
				fatal(fmt.Errorf("-hosts: %q is not a host count in 1..%d", f, pipm.MaxHosts))
			}
			clusterHosts = append(clusterHosts, h)
		}
	}

	// Probe every output path up front for the same reason: an unwritable
	// -json/-timeseries/-trace destination must fail in milliseconds, not
	// after the sweep has finished and the data is about to be lost.
	for _, path := range []string{*jsonPath, *tsPath, *trPath} {
		if path == "" {
			continue
		}
		if err := pipm.ProbeOutputFile(path); err != nil {
			fatal(err)
		}
	}

	opt := pipm.DefaultSuiteOptions()
	if *quick {
		opt = pipm.QuickSuiteOptions()
	}
	if *records > 0 {
		opt.RecordsPerCore = *records
	}
	if *workloads != "" {
		opt.Workloads = opt.Workloads[:0]
		for _, name := range strings.Split(*workloads, ",") {
			wl, err := pipm.WorkloadByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			opt.Workloads = append(opt.Workloads, wl)
		}
	}
	opt.Workers = *parallel
	if *intraPar > 0 {
		opt.Intra.Workers = *intraPar
	}
	if *progress {
		opt.Progress = stderr
	}
	// Telemetry stays disabled — and every run key unchanged — unless an
	// output flag asks for it.
	if *tsPath != "" {
		if *sampleInt <= 0 {
			fatal(fmt.Errorf("-sample-interval must be positive, got %v", *sampleInt))
		}
		opt.Telemetry.SampleInterval = pipm.Time(sampleInt.Nanoseconds()) * pipm.Nanosecond
	}
	if *trPath != "" {
		opt.Telemetry.Trace = true
	}
	if *storeDir != "" {
		st, err := pipm.OpenStore(*storeDir)
		if err != nil {
			fatal(err)
		}
		opt.Store = st
	}
	suite := pipm.NewSuite(opt)

	// Build every requested artefact concurrently — the engine's memo and
	// singleflight keep shared runs deduplicated — but buffer each one and
	// print in presentation order, so stdout is deterministic.
	wallStart := time.Now()
	arts := make([]*artefact, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		arts[i] = &artefact{id: id}
		wg.Add(1)
		go func(a *artefact) {
			defer wg.Done()
			start := time.Now()
			a.err = run(&a.out, suite, opt, a.id)
			a.wall = time.Since(start)
		}(arts[i])
	}
	wg.Wait()
	var failed *artefact
	for _, a := range arts {
		if a.err != nil {
			failed = a
			break
		}
		os.Stdout.Write(a.out.Bytes())
		fmt.Println()
		fmt.Fprintf(stderr, "[%s done in %v]\n", a.id, a.wall.Round(time.Millisecond))
	}

	// Even when an artefact failed, the runs that did complete are real
	// measurements: write the bench report (marked partial) and any requested
	// telemetry before exiting nonzero, so a long sweep's data survives one
	// broken figure builder.
	if *jsonPath != "" {
		// With -intra-parallel, also record the sequential-vs-PDES multi-host
		// throughput pair: the perf trajectory of the intra-run engine across
		// PRs lives in BENCH_*.json next to the per-run timings.
		var ib, ib64 *intraBench
		if *intraPar > 0 {
			var err error
			if ib, err = measureIntra(opt, *intraPar); err != nil {
				fatal(err)
			}
			fmt.Fprintf(stderr, "[intra bench: seq %.0f rec/s, pdes(%d) %.0f rec/s, speedup %.2fx]\n",
				ib.SeqRecordsPerSec, ib.Workers, ib.PDESRecordsPerSec, ib.Speedup)
			if ib64, err = measureIntra64(opt, *intraPar); err != nil {
				fatal(err)
			}
			fmt.Fprintf(stderr, "[intra bench 64h: seq %.0f rec/s, pdes(%d) %.0f rec/s, speedup %.2fx]\n",
				ib64.SeqRecordsPerSec, ib64.Workers, ib64.PDESRecordsPerSec, ib64.Speedup)
		}
		if err := writeBench(*jsonPath, suite, opt, arts, time.Since(wallStart), *parallel, *intraPar, ib, ib64, *quick, failed != nil); err != nil {
			fatal(err)
		}
		fmt.Fprintf(stderr, "[bench report written to %s]\n", *jsonPath)
	}
	if *tsPath != "" {
		write := suite.WriteTimeSeries
		if strings.HasSuffix(*tsPath, ".csv") {
			write = suite.WriteTimeSeriesCSV
		}
		if err := writeTo(*tsPath, write); err != nil {
			fatal(err)
		}
		fmt.Fprintf(stderr, "[time-series written to %s]\n", *tsPath)
	}
	if *trPath != "" {
		if err := writeTo(*trPath, suite.WriteTrace); err != nil {
			fatal(err)
		}
		fmt.Fprintf(stderr, "[trace written to %s]\n", *trPath)
	}
	if st, ok := suite.StoreStats(); ok {
		fmt.Fprintf(stderr, "[store %s: %d hits, %d misses, %d corrupt, %d saves]\n",
			st.Dir, st.Hits, st.Misses, st.Corrupt, st.Saves)
	}
	if failed != nil {
		fatal(fmt.Errorf("%s: %w", failed.id, failed.err))
	}
}

// writeTo streams one export into path via a temp file + rename, so a crash
// or a failed export never leaves a truncated artefact where a previous good
// one stood.
func writeTo(path string, write func(io.Writer) error) error {
	return pipm.WriteToAtomic(path, write)
}

// artefact is one requested experiment: its id, buffered stdout content,
// wall-clock cost and error.
type artefact struct {
	id   string
	out  bytes.Buffer
	wall time.Duration
	err  error
}

// selectArtefacts resolves the -exp flag against the known artefact order,
// returning the requested ids in presentation order or an error naming the
// first unknown id.
func selectArtefacts(exps string) ([]string, error) {
	known := map[string]bool{}
	for _, id := range order {
		known[id] = true
	}
	if exps == "all" {
		return order, nil
	}
	want := map[string]bool{}
	for _, id := range strings.Split(exps, ",") {
		id = strings.TrimSpace(id)
		if !known[id] {
			return nil, fmt.Errorf("unknown experiment %q (have: %s)", id, strings.Join(order, ", "))
		}
		want[id] = true
	}
	var ids []string
	for _, id := range order {
		if want[id] {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// benchReport is the -json schema: enough to track the perf trajectory of
// the experiment engine across PRs (BENCH_*.json).
type benchReport struct {
	Schema string `json:"schema"`
	// Partial marks a report written after a figure builder failed: the
	// recorded runs are valid measurements, but the artefact set — and
	// therefore the run set — is incomplete.
	Partial        bool             `json:"partial,omitempty"`
	Quick          bool             `json:"quick"`
	Parallel       int              `json:"parallel"`
	IntraParallel  int              `json:"intra_parallel,omitempty"`
	GOMAXPROCS     int              `json:"gomaxprocs"`
	RecordsPerCore int64            `json:"records_per_core"`
	Seed           int64            `json:"seed"`
	Workloads      []string         `json:"workloads"`
	Artefacts      []artefactTiming `json:"artefacts"`
	Runs           []pipm.RunStats  `json:"runs"`
	UniqueRuns     int              `json:"unique_runs"`
	MemoHits       int              `json:"memo_hits"`
	RunWallMSTotal float64          `json:"run_wall_ms_total"`
	WallMSTotal    float64          `json:"wall_ms_total"`
	// Store is the persistent result store's traffic for this invocation,
	// present only when -store (or $PIPM_STORE) attached one.
	Store *pipm.StoreStats `json:"store,omitempty"`
	// IntraBench is the sequential-vs-PDES throughput pair recorded when
	// -intra-parallel is set (see measureIntra). IntraBench64 is the same
	// measurement at 64 hosts — sharded directory, full-width sharer mask —
	// with per-core records scaled so total trace volume matches the base
	// pair's.
	IntraBench   *intraBench `json:"intra_bench,omitempty"`
	IntraBench64 *intraBench `json:"intra_bench_64,omitempty"`
}

// intraBench records one multi-host run timed on both engines. The two runs
// produce bit-identical Results (checked before the report is written);
// only wall-clock differs.
type intraBench struct {
	Workload          string  `json:"workload"`
	Scheme            string  `json:"scheme"`
	Hosts             int     `json:"hosts"`
	Cores             int     `json:"cores_per_host"`
	RecordsPerCore    int64   `json:"records_per_core"`
	Workers           int     `json:"workers"`
	SeqWallMS         float64 `json:"seq_wall_ms"`
	PDESWallMS        float64 `json:"pdes_wall_ms"`
	SeqRecordsPerSec  float64 `json:"seq_records_per_sec"`
	PDESRecordsPerSec float64 `json:"pdes_records_per_sec"`
	Speedup           float64 `json:"speedup"`
}

// measureIntra times one multi-host pr/PIPM run on the sequential engine
// and on the PDES engine with the requested worker count, and requires the
// two Results to be bit-identical before reporting throughput.
func measureIntra(opt pipm.SuiteOptions, workers int) (*intraBench, error) {
	return measureIntraAt(opt.Cfg, opt.RecordsPerCore, opt.Seed, workers)
}

// measureIntra64 is measureIntra at 64 hosts: the config scaled through
// pipm.ScaleForHosts (sharded directory widened with the host count) and
// per-core records shrunk so total trace volume matches the base pair's.
func measureIntra64(opt pipm.SuiteOptions, workers int) (*intraBench, error) {
	const hosts = 64
	cfg := pipm.ScaleForHosts(opt.Cfg, hosts)
	records := pipm.ClusterScaleRecords(opt.RecordsPerCore, opt.Cfg.Hosts, hosts)
	if workers > hosts {
		workers = hosts
	}
	return measureIntraAt(cfg, records, opt.Seed, workers)
}

func measureIntraAt(cfg pipm.Config, records, seed int64, workers int) (*intraBench, error) {
	wl, err := pipm.WorkloadByName("pr")
	if err != nil {
		return nil, err
	}
	totalRecords := records * int64(cfg.Hosts) * int64(cfg.CoresPerHost)

	seqStart := time.Now()
	seqRes, err := pipm.Run(cfg, wl, pipm.PIPM, records, seed)
	if err != nil {
		return nil, err
	}
	seqWall := time.Since(seqStart)

	pdesStart := time.Now()
	pdesRes, err := pipm.RunIntra(cfg, wl, pipm.PIPM, records, seed, workers)
	if err != nil {
		return nil, err
	}
	pdesWall := time.Since(pdesStart)

	if seqRes != pdesRes {
		return nil, fmt.Errorf("intra bench: PDES result diverged from sequential engine")
	}
	ib := &intraBench{
		Workload:       wl.Name,
		Scheme:         pipm.PIPM.String(),
		Hosts:          cfg.Hosts,
		Cores:          cfg.CoresPerHost,
		RecordsPerCore: records,
		Workers:        workers,
		SeqWallMS:      float64(seqWall) / float64(time.Millisecond),
		PDESWallMS:     float64(pdesWall) / float64(time.Millisecond),
	}
	if s := seqWall.Seconds(); s > 0 {
		ib.SeqRecordsPerSec = float64(totalRecords) / s
	}
	if s := pdesWall.Seconds(); s > 0 {
		ib.PDESRecordsPerSec = float64(totalRecords) / s
	}
	if pdesWall > 0 {
		ib.Speedup = float64(seqWall) / float64(pdesWall)
	}
	return ib, nil
}

type artefactTiming struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
	Error  string  `json:"error,omitempty"`
}

func writeBench(path string, s *pipm.Suite, opt pipm.SuiteOptions,
	arts []*artefact, total time.Duration, parallel, intraPar int, ib, ib64 *intraBench, quick, partial bool) error {
	rep := benchReport{
		Schema:         "pipm-bench/v1",
		Partial:        partial,
		Quick:          quick,
		Parallel:       parallel,
		IntraParallel:  intraPar,
		IntraBench:     ib,
		IntraBench64:   ib64,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		RecordsPerCore: opt.RecordsPerCore,
		Seed:           opt.Seed,
		Runs:           s.RunStats(),
		WallMSTotal:    float64(total) / float64(time.Millisecond),
	}
	for _, wl := range opt.Workloads {
		rep.Workloads = append(rep.Workloads, wl.Name)
	}
	for _, a := range arts {
		t := artefactTiming{ID: a.id, WallMS: float64(a.wall) / float64(time.Millisecond)}
		if a.err != nil {
			t.Error = a.err.Error()
		}
		rep.Artefacts = append(rep.Artefacts, t)
	}
	rep.UniqueRuns = len(rep.Runs)
	for _, r := range rep.Runs {
		rep.MemoHits += r.MemoHits
		rep.RunWallMSTotal += r.WallMS
	}
	if st, ok := s.StoreStats(); ok {
		rep.Store = &st
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return pipm.WriteFileAtomic(path, append(data, '\n'))
}

func run(w io.Writer, s *pipm.Suite, opt pipm.SuiteOptions, id string) error {
	printT := func(t pipm.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprint(w, t.Format())
		return nil
	}
	switch id {
	case "table1":
		fmt.Fprint(w, pipm.Table1())
		return nil
	case "table2":
		fmt.Fprint(w, pipm.Table2(opt.Cfg))
		return nil
	case "fig4":
		tabs, err := s.Fig4()
		if err != nil {
			return err
		}
		for _, t := range tabs {
			fmt.Fprint(w, t.Format())
		}
		return nil
	case "fig5":
		return printT(s.Fig5())
	case "fig10":
		return printT(s.Fig10())
	case "fig11":
		return printT(s.Fig11())
	case "fig12":
		return printT(s.Fig12())
	case "fig13":
		return printT(s.Fig13())
	case "fig14":
		return printT(s.Fig14())
	case "fig15":
		return printT(s.Fig15())
	case "fig16":
		return printT(s.Fig16())
	case "fig17":
		return printT(s.Fig17())
	case "scalability":
		return printT(s.Scalability(nil))
	case "clusterscale":
		tabs, err := s.ClusterScale(clusterHosts)
		if err != nil {
			return err
		}
		for _, t := range tabs {
			fmt.Fprint(w, t.Format())
		}
		return nil
	case "serve":
		tabs, err := s.ServeComparison(clusterHosts)
		if err != nil {
			return err
		}
		for _, t := range tabs {
			fmt.Fprint(w, t.Format())
		}
		return nil
	case "threshold":
		return printT(s.ThresholdSensitivity(nil))
	case "adaptivity":
		return printT(s.Adaptivity())
	case "protocheck":
		for _, hosts := range []int{2, 3} {
			for _, ext := range []bool{false, true} {
				name := "MSI"
				if ext {
					name = "MSI+PIPM"
				}
				res, v := pipm.VerifyCoherence(hosts, ext)
				if v != nil {
					return fmt.Errorf("%s/%d hosts: %v", name, hosts, v)
				}
				fmt.Fprintf(w, "%-9s %d hosts: %d states, %d transitions, SWMR+SC hold, deadlock-free\n",
					name, hosts, res.States, res.Transitions)
			}
		}
		return nil
	}
	return fmt.Errorf("unknown experiment %q", id)
}

func fatal(err error) {
	fmt.Fprintln(stderr, "experiments:", err)
	os.Exit(1)
}
