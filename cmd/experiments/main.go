// Command experiments regenerates the paper's evaluation artefacts: Tables
// 1–2 and Figures 4–5 and 10–17, printed as text tables. Results for the
// shared (workload × scheme) sweep are memoized across figures.
//
// Usage:
//
//	experiments                          # everything (several minutes)
//	experiments -exp fig10               # one artefact
//	experiments -exp fig10,fig11 -records 100000 -workloads pr,ycsb
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pipm"
)

var order = []string{
	"table1", "table2", "fig4", "fig5", "fig10", "fig11", "fig12",
	"fig13", "fig14", "fig15", "fig16", "fig17", "scalability",
	"threshold", "adaptivity", "protocheck",
}

func main() {
	var (
		exps      = flag.String("exp", "all", "comma-separated artefacts: "+strings.Join(order, ", ")+", or all")
		records   = flag.Int64("records", 0, "override trace records per core")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: full catalog)")
		quick     = flag.Bool("quick", false, "use the small quick configuration")
	)
	flag.Parse()

	opt := pipm.DefaultSuiteOptions()
	if *quick {
		opt = pipm.QuickSuiteOptions()
	}
	if *records > 0 {
		opt.RecordsPerCore = *records
	}
	if *workloads != "" {
		opt.Workloads = opt.Workloads[:0]
		for _, name := range strings.Split(*workloads, ",") {
			wl, err := pipm.WorkloadByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			opt.Workloads = append(opt.Workloads, wl)
		}
	}
	suite := pipm.NewSuite(opt)

	want := map[string]bool{}
	if *exps == "all" {
		for _, id := range order {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*exps, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	for _, id := range order {
		if !want[id] {
			continue
		}
		delete(want, id)
		start := time.Now()
		if err := run(suite, opt, id); err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	for id := range want {
		fatal(fmt.Errorf("unknown experiment %q", id))
	}
}

func run(s *pipm.Suite, opt pipm.SuiteOptions, id string) error {
	printT := func(t pipm.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Print(t.Format())
		return nil
	}
	switch id {
	case "table1":
		fmt.Print(pipm.Table1())
		return nil
	case "table2":
		fmt.Print(pipm.Table2(opt.Cfg))
		return nil
	case "fig4":
		tabs, err := s.Fig4()
		if err != nil {
			return err
		}
		for _, t := range tabs {
			fmt.Print(t.Format())
		}
		return nil
	case "fig5":
		return printT(s.Fig5())
	case "fig10":
		return printT(s.Fig10())
	case "fig11":
		return printT(s.Fig11())
	case "fig12":
		return printT(s.Fig12())
	case "fig13":
		return printT(s.Fig13())
	case "fig14":
		return printT(s.Fig14())
	case "fig15":
		return printT(s.Fig15())
	case "fig16":
		return printT(s.Fig16())
	case "fig17":
		return printT(s.Fig17())
	case "scalability":
		return printT(s.Scalability(nil))
	case "threshold":
		return printT(s.ThresholdSensitivity(nil))
	case "adaptivity":
		return printT(s.Adaptivity())
	case "protocheck":
		for _, hosts := range []int{2, 3} {
			for _, ext := range []bool{false, true} {
				name := "MSI"
				if ext {
					name = "MSI+PIPM"
				}
				res, v := pipm.VerifyCoherence(hosts, ext)
				if v != nil {
					return fmt.Errorf("%s/%d hosts: %v", name, hosts, v)
				}
				fmt.Printf("%-9s %d hosts: %d states, %d transitions, SWMR+SC hold, deadlock-free\n",
					name, hosts, res.States, res.Transitions)
			}
		}
		return nil
	}
	return fmt.Errorf("unknown experiment %q", id)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
